// Hispar list serialization.
//
// The paper publishes H2K weekly as a downloadable artifact [49]; this
// module reads/writes that artifact. Two formats:
//  * CSV — one row per URL: domain, bootstrap rank, kind, page index,
//    url (the published format);
//  * JSON — nested URL sets, convenient for web tooling.
// Round-tripping is exact (tests/test_serialization.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/hispar.h"
#include "core/list_build.h"
#include "core/measurement.h"
#include "obs/obs.h"

namespace hispar::core {

// --- CSV ---
void write_csv(const HisparList& list, std::ostream& out);
std::string to_csv(const HisparList& list);
// Throws std::runtime_error on malformed input (bad header, bad rank,
// internal URL before its landing page, unparsable URL).
HisparList read_csv(std::istream& in, std::string name = "from-csv");
HisparList from_csv(const std::string& csv, std::string name = "from-csv");

// --- JSON (subset used by the published artifact) ---
std::string to_json(const HisparList& list);

// Convenience file helpers.
void save_csv(const HisparList& list, const std::string& path);
HisparList load_csv(const std::string& path);

// --- Campaign results CSV ---
//
// One row per measured page: the landing median first, then the
// internals as "internal-<i>". Quarantined sites (no usable landing
// load) are skipped — they carry no data rows, only failure accounting.
// Doubles use default ostream formatting; `hispar measure` has always
// written exactly these bytes (tests/test_golden.cpp pins the format).
void write_measure_csv(std::ostream& out,
                       const std::vector<SiteObservation>& sites);

// --- Campaign checkpoints ---
//
// Append-only, line-oriented resume file for MeasurementCampaign::run().
// Layout:
//   hispar-checkpoint,v1,<config digest>
//   shard,<id>,<n sites>
//     site,<position>,<domain>,<rank>,<category>,<quarantined>,
//          <total retries>,<n internals>,<n outcomes>,<has landing>
//     metrics,...            (landing if present, then the internals)
//     outcome,...            (one per attempted page fetch; a trailing
//          eighth field records breaker denials and is present only
//          when nonzero, so chaos-free files keep the historical bytes)
//   breaker,<key>,<state>,<consecutive failures>,<opened at>,
//          <times opened>,<denials>   (optional: the shard's final
//        circuit-breaker states under a chaos schedule; informational —
//        a shard either completed or re-runs from scratch — but
//        re-emitted verbatim so resumed files stay byte-identical)
//   obscounter/obsgauge/obshist/obsspan/obsdropped,...   (optional:
//        the shard's telemetry, so a resumed campaign's metrics/trace
//        exports stay bit-identical to an uninterrupted run)
//   endshard,<id>
// Doubles are written at precision 17 so every value round-trips exactly
// — a resumed campaign must be bit-identical to an uninterrupted one. A
// shard block is appended atomically under a lock and flushed, so a
// killed campaign can tear at most the trailing block; read_checkpoint
// silently discards an unterminated tail but throws std::runtime_error
// on malformed complete records.
struct CampaignCheckpoint {
  std::uint64_t config_digest = 0;
  std::vector<std::size_t> completed_shards;
  // (position in list.sets, observation) for every site of every
  // completed shard.
  std::vector<std::pair<std::size_t, SiteObservation>> observations;
  // Telemetry of completed shards, present only for shards that ran
  // with observability enabled.
  std::map<std::size_t, obs::ShardTelemetry> telemetry;
  // Final breaker states of completed shards, present only for shards
  // that ran under a chaos schedule and touched at least one scope.
  std::map<std::size_t, std::vector<net::BreakerSet::Record>> breakers;
};

void write_checkpoint_header(std::ostream& out, std::uint64_t config_digest);
void append_checkpoint_shard(std::ostream& out, std::size_t shard,
                             const std::vector<std::size_t>& positions,
                             const std::vector<SiteObservation>& observations,
                             const obs::ShardTelemetry* telemetry = nullptr,
                             const std::vector<net::BreakerSet::Record>*
                                 breakers = nullptr);
CampaignCheckpoint read_checkpoint(std::istream& in);

// --- List-build checkpoints ---
//
// The same discipline for ListBuildCampaign::run(), at week granularity
// (weeks are the unit of completion — a week has a global wave barrier,
// so partial weeks are never worth checkpointing). Layout:
//   hispar-listbuild,v1,<config digest>
//   week,<week>,<n sets>
//     set,<domain>,<bootstrap rank>,<n urls>
//       url,<page index>,<url>
//     weekstats,<examined>,...,<retries>,<quarantined-by kind...>
//     shardtel,<id>
//       obscounter/obsgauge/obshist/obsspan/obsdropped,...
//     endshardtel,<id>        (one block per shard, ascending)
//   endweek,<week>
// The list name is not serialized; the resuming campaign restores it
// from its own config. Torn trailing blocks (killed build) are silently
// discarded; malformed complete records throw std::runtime_error.
struct ListBuildCheckpoint {
  std::uint64_t config_digest = 0;
  std::vector<ListBuildWeekRecord> weeks;  // file order
};

void write_listbuild_checkpoint_header(std::ostream& out,
                                       std::uint64_t config_digest);
void append_listbuild_week(std::ostream& out,
                           const ListBuildWeekRecord& record);
ListBuildCheckpoint read_listbuild_checkpoint(std::istream& in);

// --- Multi-vantage checkpoints ---
//
// The same discipline for core::VantageCampaign::run(), at two
// granularities. The durable unit during a run is one (vantage, shard)
// cell of the 2-D scheduler — a cell either completed (its shard
// observations and telemetry are on disk and splice back in) or
// re-runs from scratch, so a resumed multi-vantage run is bit-identical
// to an uninterrupted one at any --jobs. Once every cell of every
// vantage has landed, the campaign compacts the file to whole-vantage
// blocks — the historical v1 layout, byte-identical to what the
// sequential engine wrote (tests/test_golden.cpp pins it). Layout:
//   hispar-vantage,v1,<config digest>
//   vantage,<id>,<n sites>          (a completed vantage)
//     site,<position>,...     (exactly the shard-block site records:
//     metrics,... outcome,...  one per site, in list order)
//   obscounter/obsgauge/obshist/obsspan/obsdropped,...   (optional:
//        the vantage's merged telemetry)
//   endvantage,<id>
//   vshard,<vantage>,<shard>,<n sites>   (one completed scheduler cell;
//     site,...                 only that shard's positions, in shard
//     metrics,... outcome,...  order)
//   obscounter/...,...        (optional: the cell's raw per-shard
//        telemetry, pre-merge)
//   endvshard,<vantage>,<shard>
// The digest covers every derived per-vantage campaign config and the
// list — never jobs or observability — so files written by the
// sequential engine resume under the 2-D scheduler and vice versa.
// Torn trailing blocks (killed run) are silently discarded; malformed
// complete records throw std::runtime_error.
struct VantageCheckpointBlock {
  std::size_t vantage = 0;
  // (position in list.sets, observation); blocks written by
  // append_vantage_block cover every position.
  std::vector<std::pair<std::size_t, SiteObservation>> observations;
  bool has_telemetry = false;
  obs::ShardTelemetry telemetry;
};

// One durable (vantage, shard) scheduler cell. Its telemetry is the
// shard's *raw* telemetry — the vantage-level merge happens once all of
// a vantage's cells are in, via core::merge_campaign_telemetry.
struct VantageShardBlock {
  std::size_t vantage = 0;
  std::size_t shard = 0;
  std::vector<std::pair<std::size_t, SiteObservation>> observations;
  bool has_telemetry = false;
  obs::ShardTelemetry telemetry;
};

struct VantageCheckpoint {
  std::uint64_t config_digest = 0;
  std::vector<VantageCheckpointBlock> vantages;  // file order
  std::vector<VantageShardBlock> shards;         // file order
};

void write_vantage_checkpoint_header(std::ostream& out,
                                     std::uint64_t config_digest);
void append_vantage_block(std::ostream& out, std::size_t vantage,
                          const std::vector<SiteObservation>& observations,
                          const obs::ShardTelemetry* telemetry = nullptr);
void append_vantage_shard_block(std::ostream& out, std::size_t vantage,
                                std::size_t shard,
                                const std::vector<std::size_t>& positions,
                                const std::vector<SiteObservation>&
                                    observations,
                                const obs::ShardTelemetry* telemetry = nullptr);
VantageCheckpoint read_vantage_checkpoint(std::istream& in);

// --- Browsing-session checkpoints ---
//
// The same discipline for core::SessionCampaign::run(), at session
// granularity: one session is one site's landing -> internal replay
// over private browser-cache/DNS/connection state, so it is also the
// unit of isolated state and of resume — a session either completed
// (its observation, cache counters and telemetry are on disk and
// splice back in) or re-runs from scratch. Layout:
//   hispar-session,v1,<config digest>
//   session,<position>
//     site,<position>,...      (exactly the shard-block site record)
//     cachestats,<lookups>,<fresh hits>,<revalidations>,<misses>,
//                <insertions>,<evictions>
//     obscounter/obsgauge/obshist/obsspan/obsdropped,...   (optional:
//          the session's telemetry)
//   endsession,<position>
// Torn trailing blocks (killed run) are silently discarded; malformed
// complete records throw std::runtime_error.
struct SessionCheckpointBlock {
  std::size_t position = 0;  // index into list.sets
  SiteObservation observation;
  browser::CacheStats cache;
  bool has_telemetry = false;
  obs::ShardTelemetry telemetry;
};

struct SessionCheckpoint {
  std::uint64_t config_digest = 0;
  std::vector<SessionCheckpointBlock> sessions;  // file order
};

void write_session_checkpoint_header(std::ostream& out,
                                     std::uint64_t config_digest);
void append_session_block(std::ostream& out, std::size_t position,
                          const SiteObservation& observation,
                          const browser::CacheStats& cache,
                          const obs::ShardTelemetry* telemetry = nullptr);
SessionCheckpoint read_session_checkpoint(std::istream& in);

// --- Atomic file replacement ---
//
// Writes `contents` to `path + ".tmp"` and renames it over `path`. The
// rename is atomic on POSIX, so a kill at any point leaves either the
// old complete file or the new one — never a truncated mix. Checkpoint
// engines use this for the resume rewrite (dropping a torn tail) and
// the final compaction; rewriting in place with std::ios::trunc had a
// kill window that silently lost blocks that were already durable.
// Throws std::runtime_error when the temp file cannot be written or
// renamed; a stale .tmp from an earlier kill is simply overwritten.
void replace_file_atomically(const std::string& path,
                             const std::string& contents);

// --- CLI checkpoint-path resolution ---
//
// Shared by `hispar measure`/`build` and the regression tests:
// --checkpoint FILE names the resume file (created if absent);
// --resume FILE additionally requires it to exist already. A bare
// `--resume` with no value, a missing resume file, and a conflicting
// --checkpoint/--resume pair all fail fast with std::invalid_argument,
// prefixed by `context`. Returns the resolved path ("" = no
// checkpointing).
std::string resolve_checkpoint_path(const std::string& context,
                                    const std::string& checkpoint,
                                    bool has_resume,
                                    const std::string& resume);

}  // namespace hispar::core
