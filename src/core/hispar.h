// Hispar: the top list of landing AND internal page URLs (§3).
//
// Unlike domain-only top lists, Hispar is a list of URL *sets*: for each
// site, the landing page plus the at-most-(N-1) most frequently visited
// internal pages, discovered via `site:` search-engine queries. H1K has
// 1000 sites x 20 URLs; H2K has ~2000 sites x 50 URLs, refreshed weekly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "search/engine.h"
#include "toplist/providers.h"
#include "web/generator.h"

namespace hispar::core {

struct UrlSet {
  std::string domain;
  std::size_t bootstrap_rank = 0;  // rank in the bootstrap (Alexa) list
  // urls[0] is the landing page; the rest are internal pages. Although
  // search results are ranked, §3 advises against reading meaning into
  // the ordering of a URL set.
  std::vector<std::string> urls;
  // Parallel page indices into the generating WebSite (0 = landing);
  // lets the measurement pipeline regenerate the same pages.
  std::vector<std::size_t> page_indices;

  std::size_t internal_count() const {
    return urls.empty() ? 0 : urls.size() - 1;
  }
};

struct HisparList {
  std::string name;
  std::uint64_t week = 0;
  std::vector<UrlSet> sets;

  std::size_t total_urls() const;
  // Contiguous slice by position in the list (for Ht30/Ht100/Hb100).
  HisparList slice(std::size_t first, std::size_t count,
                   std::string name) const;
  HisparList top(std::size_t count, std::string name) const;
  HisparList bottom(std::size_t count, std::string name) const;
  const UrlSet* find(const std::string& domain) const;
};

struct HisparConfig {
  std::string name = "H1K";
  std::size_t target_sites = 1000;
  std::size_t urls_per_site = 20;  // N: 1 landing + (N-1) internal
  // Sites whose search yields fewer internal results are dropped (§3.1
  // uses 5 for H1K; §3 drops sites with < 10 results for H2K).
  std::size_t min_internal_results = 5;
  toplist::Provider bootstrap = toplist::Provider::kAlexa;
  // How deep in the bootstrap list to look before giving up.
  std::size_t max_bootstrap_scan = 0;  // 0 = universe size
  std::size_t index_crawl_budget = 800;
};

// Build statistics (cost accounting, §7).
struct BuildStats {
  std::size_t sites_examined = 0;
  std::size_t sites_dropped = 0;
  // Domains the bootstrap list names but the web has no site for:
  // skipped (and still billed for the query that discovered it) rather
  // than crashing the build.
  std::size_t sites_missing = 0;
  std::uint64_t queries_issued = 0;
  double spend_usd = 0.0;
};

class HisparBuilder {
 public:
  HisparBuilder(const web::SyntheticWeb& web,
                const toplist::TopListFactory& toplists,
                search::SearchEngine& engine);

  HisparList build(const HisparConfig& config, std::uint64_t week);
  const BuildStats& last_build_stats() const { return stats_; }

 private:
  const web::SyntheticWeb* web_;
  const toplist::TopListFactory* toplists_;
  search::SearchEngine* engine_;
  BuildStats stats_;
};

// §3 stability metrics.
// Fraction of sites present in `before` but absent from `after`.
double site_churn(const HisparList& before, const HisparList& after);
// Fraction of internal URLs present on week i but not week i+1, over
// sites present in both weeks (order-insensitive, as the paper computes).
double internal_url_churn(const HisparList& before, const HisparList& after);

}  // namespace hispar::core
