#include "core/hispar.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hispar::core {

std::size_t HisparList::total_urls() const {
  std::size_t total = 0;
  for (const auto& set : sets) total += set.urls.size();
  return total;
}

HisparList HisparList::slice(std::size_t first, std::size_t count,
                             std::string slice_name) const {
  // first == sets.size() (the empty-list top(n) case included) yields an
  // empty named slice, matching TopList::top truncation semantics; only
  // a start past the end is a caller error.
  if (first > sets.size()) throw std::out_of_range("HisparList::slice");
  HisparList out;
  out.name = std::move(slice_name);
  out.week = week;
  const std::size_t end = std::min(sets.size(), first + count);
  out.sets.assign(sets.begin() + static_cast<std::ptrdiff_t>(first),
                  sets.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

HisparList HisparList::top(std::size_t count, std::string slice_name) const {
  return slice(0, count, std::move(slice_name));
}

HisparList HisparList::bottom(std::size_t count,
                              std::string slice_name) const {
  const std::size_t first = sets.size() > count ? sets.size() - count : 0;
  return slice(first, count, std::move(slice_name));
}

const UrlSet* HisparList::find(const std::string& domain) const {
  for (const auto& set : sets)
    if (set.domain == domain) return &set;
  return nullptr;
}

HisparBuilder::HisparBuilder(const web::SyntheticWeb& web,
                             const toplist::TopListFactory& toplists,
                             search::SearchEngine& engine)
    : web_(&web), toplists_(&toplists), engine_(&engine) {}

HisparList HisparBuilder::build(const HisparConfig& config,
                                std::uint64_t week) {
  stats_ = BuildStats{};

  const std::size_t scan_limit = config.max_bootstrap_scan == 0
                                     ? web_->site_count()
                                     : config.max_bootstrap_scan;
  const toplist::TopList bootstrap =
      toplists_->weekly_list(config.bootstrap, week, scan_limit);

  // Narrow the engine's index crawl budget for list building.
  search::SearchEngineConfig engine_config = engine_->config();
  engine_config.index.crawl_budget = config.index_crawl_budget;
  search::SearchEngine engine(*web_, engine_config);

  HisparList list;
  list.name = config.name;
  list.week = week;

  // "Starting with the most popular site listed in A1M, we examine the
  // sites one-by-one until Hispar has enough pages." (§3)
  for (std::size_t rank = 1;
       rank <= bootstrap.size() && list.sets.size() < config.target_sites;
       ++rank) {
    const std::string& domain = bootstrap.domain_at(rank);
    ++stats_.sites_examined;

    const auto results =
        engine.site_query(domain, config.urls_per_site - 1, week);
    // Only *internal* results count toward the §3 threshold: a result
    // for the landing page (page_index 0) is later deduplicated against
    // urls[0], so counting it would admit sites one internal URL short.
    std::size_t internal_results = 0;
    for (const auto& result : results)
      if (result.page_index != 0) ++internal_results;
    if (internal_results < config.min_internal_results) {
      ++stats_.sites_dropped;  // mostly non-English sites (§3)
      continue;
    }

    const web::WebSite* site = web_->find_site(domain);
    if (site == nullptr) {
      ++stats_.sites_missing;  // bootstrap names a domain the web lacks
      continue;
    }
    UrlSet set;
    set.domain = domain;
    set.bootstrap_rank = rank;
    set.urls.push_back(site->page_url(0).str());
    set.page_indices.push_back(0);
    for (const auto& result : results) {
      if (result.page_index == 0) continue;  // landing already included
      set.urls.push_back(result.url);
      set.page_indices.push_back(result.page_index);
    }
    list.sets.push_back(std::move(set));
  }

  stats_.queries_issued = engine.queries_issued();
  stats_.spend_usd = static_cast<double>(stats_.queries_issued) *
                     search::query_price_usd(engine_config.provider);
  // The internal engine (narrowed crawl budget) did the billing; fold it
  // into the injected engine so the caller's meter reflects real spend.
  engine_->add_billed_queries(engine.queries_issued());
  return list;
}

double site_churn(const HisparList& before, const HisparList& after) {
  if (before.sets.empty()) throw std::invalid_argument("site_churn: empty");
  std::set<std::string> after_domains;
  for (const auto& set : after.sets) after_domains.insert(set.domain);
  std::size_t gone = 0;
  for (const auto& set : before.sets)
    if (!after_domains.count(set.domain)) ++gone;
  return static_cast<double>(gone) / static_cast<double>(before.sets.size());
}

double internal_url_churn(const HisparList& before, const HisparList& after) {
  std::size_t total = 0;
  std::size_t gone = 0;
  for (const auto& set : before.sets) {
    const UrlSet* counterpart = after.find(set.domain);
    if (counterpart == nullptr) continue;  // only sites on both weeks
    std::set<std::string> after_urls(counterpart->urls.begin(),
                                     counterpart->urls.end());
    for (std::size_t i = 1; i < set.urls.size(); ++i) {
      ++total;
      if (!after_urls.count(set.urls[i])) ++gone;
    }
  }
  if (total == 0)
    throw std::invalid_argument("internal_url_churn: no common sites");
  return static_cast<double>(gone) / static_cast<double>(total);
}

}  // namespace hispar::core
