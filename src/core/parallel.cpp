#include "core/parallel.h"

#include <atomic>
#include <exception>
#include <thread>

#include "util/rng.h"

namespace hispar::core {

std::size_t shard_of(std::string_view domain, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(util::fnv1a(domain) % shard_count);
}

std::vector<std::vector<std::size_t>> shard_indices(const HisparList& list,
                                                    std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  std::vector<std::vector<std::size_t>> shards(shard_count);
  for (std::size_t s = 0; s < list.sets.size(); ++s)
    shards[shard_of(list.sets[s].domain, shard_count)].push_back(s);
  return shards;
}

void for_each_unit(std::size_t unit_count, std::size_t jobs,
                   const std::function<void(std::size_t)>& fn) {
  if (unit_count == 0) return;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw > 0 ? hw : 1;
  }
  jobs = std::min(jobs, unit_count);

  if (jobs <= 1) {
    for (std::size_t unit = 0; unit < unit_count; ++unit) fn(unit);
    return;
  }

  // Work stealing over unit ids: units can be wildly unbalanced (a
  // domain hash puts whole sites, not loads, into a shard), so threads
  // pull the next unclaimed unit instead of owning a fixed range.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(unit_count);
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const std::size_t unit = next.fetch_add(1, std::memory_order_relaxed);
        if (unit >= unit_count) return;
        try {
          fn(unit);
        } catch (...) {
          errors[unit] = std::current_exception();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (auto& error : errors)
    if (error) std::rethrow_exception(error);
}

void for_each_shard(std::size_t shard_count, std::size_t jobs,
                    const std::function<void(std::size_t)>& fn) {
  for_each_unit(shard_count, jobs, fn);
}

}  // namespace hispar::core
