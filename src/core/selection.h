// Internal-page selection strategies (§7 "On Selecting Internal Pages").
//
// The paper uses search-engine results but discusses the alternatives at
// length; this module implements all of them so they can be compared
// (bench_selection):
//  * kSearchEngine  — the Hispar approach: `site:` queries (§3);
//  * kUniformRandom — a uniform sample of the page universe (the §4
//    baseline used to argue N=19 suffices);
//  * kBrowserTelemetry — CrUX/Mozilla-Telemetry style: sample pages in
//    proportion to real visit rates ("Nudge web-browser vendors");
//  * kPublisherCurated — the publisher names a representative set at a
//    Well-Known URI: stratified over the site's popularity deciles
//    ("Involve publishers");
//  * kMonkeyTesting — random-walk navigation from the landing page, as
//    the active-measurement studies in §2 do;
//  * kFirstLinks — the naive crawler shortcut: the first links on the
//    landing page (a known-biased straw man).
//
// Each strategy yields page indices for one site. `representativeness`
// scores a selection by how closely its median size/objects/PLT-proxy
// track the site's full population medians — the property §7 actually
// cares about ("whether a given optimization is representative").
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "search/engine.h"
#include "web/generator.h"

namespace hispar::core {

enum class SelectionStrategy {
  kSearchEngine,
  kUniformRandom,
  kBrowserTelemetry,
  kPublisherCurated,
  kMonkeyTesting,
  kFirstLinks,
};

std::string_view to_string(SelectionStrategy strategy);

struct SelectionConfig {
  std::size_t pages = 19;          // internal pages to select
  std::uint64_t seed = 4242;
  std::uint64_t week = 0;          // for the search-engine strategy
  std::size_t monkey_clicks = 400; // random-walk budget
};

// Select internal pages of `site` under `strategy`. May return fewer
// than requested if the site is too small/sparse. The search-engine
// strategy needs an engine; pass nullptr otherwise.
std::vector<std::size_t> select_internal_pages(
    const web::WebSite& site, SelectionStrategy strategy,
    const SelectionConfig& config, search::SearchEngine* engine = nullptr);

// Ground-truth representativeness of a selection: for each listed
// metric the relative error between the selection median and the median
// of a large reference sample of the site's pages (visit-weighted, i.e.
// what users actually experience). Lower is better.
struct Representativeness {
  double size_error = 0.0;     // |median_sel - median_ref| / median_ref
  double objects_error = 0.0;
  double domains_error = 0.0;
  double mean_error() const {
    return (size_error + objects_error + domains_error) / 3.0;
  }
};

Representativeness selection_representativeness(
    const web::WebSite& site, const std::vector<std::size_t>& selection,
    std::size_t reference_sample = 200, std::uint64_t seed = 99);

}  // namespace hispar::core
