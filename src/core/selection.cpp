#include "core/selection.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/stats.h"

namespace hispar::core {

std::string_view to_string(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kSearchEngine: return "search-engine";
    case SelectionStrategy::kUniformRandom: return "uniform-random";
    case SelectionStrategy::kBrowserTelemetry: return "browser-telemetry";
    case SelectionStrategy::kPublisherCurated: return "publisher-curated";
    case SelectionStrategy::kMonkeyTesting: return "monkey-testing";
    case SelectionStrategy::kFirstLinks: return "first-links";
  }
  return "unknown";
}

namespace {

std::vector<std::size_t> uniform_random(const web::WebSite& site,
                                        std::size_t pages, util::Rng& rng) {
  std::set<std::size_t> picked;
  const auto universe = static_cast<std::int64_t>(site.internal_page_count());
  for (int attempt = 0;
       attempt < 4000 && picked.size() < pages &&
       picked.size() < site.internal_page_count();
       ++attempt)
    picked.insert(static_cast<std::size_t>(rng.uniform_int(1, universe)));
  return {picked.begin(), picked.end()};
}

// Visit-rate-proportional sampling via the site's Zipf popularity: the
// CrUX-style telemetry sample. Inverse-CDF over the Zipf tail:
// P[index <= k] ~ (k/n)^(1-s) for s close to 1; we sample by powering a
// uniform draw, which matches the popularity ordering the telemetry
// projects expose.
std::vector<std::size_t> telemetry_sample(const web::WebSite& site,
                                          std::size_t pages,
                                          util::Rng& rng) {
  std::set<std::size_t> picked;
  const double n = static_cast<double>(site.internal_page_count());
  for (int attempt = 0;
       attempt < 4000 && picked.size() < pages &&
       picked.size() < site.internal_page_count();
       ++attempt) {
    // Heavily head-biased: u^20 concentrates on popular indices the way
    // per-page-view sampling does under a Zipf(~1) popularity law.
    const double u = rng.uniform();
    auto index = static_cast<std::size_t>(std::pow(u, 20.0) * n) + 1;
    if (index > site.internal_page_count())
      index = site.internal_page_count();
    picked.insert(index);
  }
  return {picked.begin(), picked.end()};
}

// Publisher-curated: a stratified sample across popularity deciles, the
// "representative internal pages at a Well-Known URI" proposal. The
// publisher knows its traffic, so strata are exact.
std::vector<std::size_t> publisher_curated(const web::WebSite& site,
                                           std::size_t pages,
                                           util::Rng& rng) {
  std::vector<std::size_t> picked;
  const std::size_t universe = site.internal_page_count();
  const std::size_t strata = std::min<std::size_t>(pages, 10);
  const std::size_t per_stratum = std::max<std::size_t>(1, pages / strata);
  std::set<std::size_t> seen;
  for (std::size_t stratum = 0; stratum < strata; ++stratum) {
    // Popularity deciles are exponential in index space under Zipf.
    const double lo_frac = std::pow(static_cast<double>(stratum) / strata, 3.0);
    const double hi_frac =
        std::pow(static_cast<double>(stratum + 1) / strata, 3.0);
    const auto lo = std::max<std::size_t>(
        1, static_cast<std::size_t>(lo_frac * static_cast<double>(universe)));
    const auto hi = std::max<std::size_t>(
        lo, static_cast<std::size_t>(hi_frac * static_cast<double>(universe)));
    for (std::size_t i = 0; i < per_stratum && picked.size() < pages; ++i) {
      const auto index = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(lo),
                          static_cast<std::int64_t>(hi)));
      if (seen.insert(index).second) picked.push_back(index);
    }
  }
  return picked;
}

// Monkey testing: random clicks starting at the landing page (§2's
// active-measurement studies). Biased toward pages reachable by short
// link paths — i.e. toward what the site promotes, not what users read.
std::vector<std::size_t> monkey_walk(const web::WebSite& site,
                                     std::size_t pages,
                                     std::size_t click_budget,
                                     util::Rng& rng) {
  std::set<std::size_t> visited;
  std::size_t current = 0;  // landing
  for (std::size_t click = 0;
       click < click_budget && visited.size() < pages; ++click) {
    const auto links = site.page_internal_links(current);
    if (links.empty() || rng.chance(0.15)) {
      current = 0;  // "back to start" — monkey got stuck or bored
      continue;
    }
    current = links[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(links.size()) - 1))];
    visited.insert(current);
  }
  return {visited.begin(), visited.end()};
}

std::vector<std::size_t> first_links(const web::WebSite& site,
                                     std::size_t pages) {
  std::vector<std::size_t> picked;
  std::set<std::size_t> seen;
  for (std::size_t target : site.page_internal_links(0)) {
    if (picked.size() >= pages) break;
    if (seen.insert(target).second) picked.push_back(target);
  }
  return picked;
}

}  // namespace

std::vector<std::size_t> select_internal_pages(
    const web::WebSite& site, SelectionStrategy strategy,
    const SelectionConfig& config, search::SearchEngine* engine) {
  util::Rng rng(config.seed ^ util::fnv1a(site.domain()));
  switch (strategy) {
    case SelectionStrategy::kSearchEngine: {
      if (engine == nullptr)
        throw std::invalid_argument(
            "select_internal_pages: search strategy needs an engine");
      std::vector<std::size_t> picked;
      for (const auto& result :
           engine->site_query(site.domain(), config.pages, config.week)) {
        if (result.page_index != 0) picked.push_back(result.page_index);
      }
      return picked;
    }
    case SelectionStrategy::kUniformRandom:
      return uniform_random(site, config.pages, rng);
    case SelectionStrategy::kBrowserTelemetry:
      return telemetry_sample(site, config.pages, rng);
    case SelectionStrategy::kPublisherCurated:
      return publisher_curated(site, config.pages, rng);
    case SelectionStrategy::kMonkeyTesting:
      return monkey_walk(site, config.pages, config.monkey_clicks, rng);
    case SelectionStrategy::kFirstLinks:
      return first_links(site, config.pages);
  }
  return {};
}

Representativeness selection_representativeness(
    const web::WebSite& site, const std::vector<std::size_t>& selection,
    std::size_t reference_sample, std::uint64_t seed) {
  if (selection.empty())
    throw std::invalid_argument("selection_representativeness: empty");

  // Reference: a visit-weighted sample — what a user session actually
  // sees, the paper's notion of "the browsing experience of real users".
  util::Rng rng(seed ^ util::fnv1a(site.domain()));
  std::vector<double> ref_size, ref_objects, ref_domains;
  const double n = static_cast<double>(site.internal_page_count());
  for (std::size_t i = 0; i < reference_sample; ++i) {
    const double u = rng.uniform();
    auto index = static_cast<std::size_t>(std::pow(u, 20.0) * n) + 1;
    if (index > site.internal_page_count())
      index = site.internal_page_count();
    const web::WebPage page = site.page(index);
    ref_size.push_back(page.total_bytes());
    ref_objects.push_back(static_cast<double>(page.object_count()));
    ref_domains.push_back(static_cast<double>(page.unique_domains()));
  }

  std::vector<double> sel_size, sel_objects, sel_domains;
  for (std::size_t index : selection) {
    const web::WebPage page = site.page(index);
    sel_size.push_back(page.total_bytes());
    sel_objects.push_back(static_cast<double>(page.object_count()));
    sel_domains.push_back(static_cast<double>(page.unique_domains()));
  }

  const auto error = [](std::vector<double>& sel, std::vector<double>& ref) {
    const double reference = util::median(ref);
    if (reference <= 0.0) return 0.0;
    return std::abs(util::median(sel) - reference) / reference;
  };
  Representativeness result;
  result.size_error = error(sel_size, ref_size);
  result.objects_error = error(sel_objects, ref_objects);
  result.domains_error = error(sel_domains, ref_domains);
  return result;
}

}  // namespace hispar::core
