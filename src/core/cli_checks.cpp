#include "core/cli_checks.h"

#include <stdexcept>

#include "core/measurement.h"

namespace hispar::core {

MeasurePlan validate_measure_flags(const MeasureFlags& flags) {
  if (flags.shards == 0)
    throw std::invalid_argument("measure: --shards must be >= 1");
  validate_shard_count("measure", flags.shards, flags.list_sites);

  MeasurePlan plan;
  plan.vantage_mode = flags.has_vantages || !flags.vantage_profile.empty();
  if (plan.vantage_mode) {
    if (!flags.vantage_profile.empty()) {
      plan.profiles = net::VantageProfile::parse_list(flags.vantage_profile);
      if (flags.has_vantages &&
          static_cast<std::size_t>(flags.vantages) != plan.profiles.size())
        throw std::invalid_argument(
            "measure: --vantages disagrees with the --vantage-profile count");
    } else {
      if (flags.vantages < 1)
        throw std::invalid_argument("measure: --vantages must be >= 1");
      plan.profiles = net::VantageProfile::default_vantages(
          static_cast<std::size_t>(flags.vantages));
    }
  }
  if (!flags.consensus_out.empty() && !plan.vantage_mode)
    throw std::invalid_argument(
        "measure: --consensus-out needs --vantages or --vantage-profile");

  plan.session_mode = flags.sessions;
  if (!plan.session_mode && flags.has_session_flags)
    throw std::invalid_argument(
        "measure: --session-len/--session-out/--warm-hits-out need "
        "--sessions");
  if (plan.session_mode && plan.vantage_mode)
    throw std::invalid_argument(
        "measure: --sessions cannot be combined with --vantages or "
        "--vantage-profile");
  if (plan.session_mode && flags.session_len < 1)
    throw std::invalid_argument(
        "measure: --session-len must be >= 1 (a session without internal "
        "pages measures nothing)");
  return plan;
}

void validate_build_flags(const BuildFlags& flags) {
  if (flags.weeks == 0)
    throw std::invalid_argument("build: --weeks must be >= 1");
  if (flags.shards == 0)
    throw std::invalid_argument("build: --shards must be >= 1");
  validate_shard_count("build", flags.shards, flags.target_sites);
}

std::unique_ptr<std::ofstream> open_artifact(const char* cmd,
                                             const char* flag,
                                             const std::string& path) {
  auto out = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*out)
    throw std::invalid_argument(std::string(cmd) + ": cannot write --" +
                                flag + " file: " + path);
  return out;
}

}  // namespace hispar::core
