// Fail-fast CLI flag validation for `hispar measure` and `hispar
// build`, extracted from tools/hispar_cli.cpp so the flag-combination
// matrix is directly unit-testable (tests/test_cli_checks.cpp).
//
// A typo'd or contradictory flag combination silently producing a
// plausible-looking campaign is the worst failure mode a measurement
// tool has, so every rule here throws std::invalid_argument with a
// pointed message before any campaign work starts. The related
// checkpoint-path rules (bare --resume, missing resume file,
// conflicting --checkpoint/--resume) live in
// core::resolve_checkpoint_path (serialization.h), and the shard/site
// bound in core::validate_shard_count (measurement.h) — both are
// invoked from here so one call validates the whole flag set.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "net/vantage_profile.h"

namespace hispar::core {

// The `hispar measure` flags whose combination rules interact.
struct MeasureFlags {
  std::size_t shards = 8;
  std::size_t list_sites = 0;  // sites in the list being measured
  bool has_vantages = false;   // --vantages given
  long vantages = 1;           // its value when given
  std::string vantage_profile;  // --vantage-profile spec ("" = absent)
  std::string consensus_out;    // --consensus-out path ("" = absent)
  bool sessions = false;        // --sessions given
  // --session-len / --session-out / --warm-hits-out given (they need
  // --sessions).
  bool has_session_flags = false;
  long session_len = 5;  // --session-len value (checked in session mode)
};

// What the validated flag set resolved to.
struct MeasurePlan {
  bool vantage_mode = false;
  bool session_mode = false;
  // Parsed/derived vantage profiles; empty unless vantage_mode.
  std::vector<net::VantageProfile> profiles;
};

// Validates the full `measure` flag matrix; throws std::invalid_argument
// on the first violated rule.
MeasurePlan validate_measure_flags(const MeasureFlags& flags);

// The `hispar build` flags whose values are bounded.
struct BuildFlags {
  std::uint64_t weeks = 1;
  std::size_t shards = 8;
  std::size_t target_sites = 0;
};

void validate_build_flags(const BuildFlags& flags);

// Opens an artifact file for truncating write, failing fast
// (std::invalid_argument, "<cmd>: cannot write --<flag> file: <path>")
// on an unwritable path — so a campaign never runs for minutes before
// discovering its output cannot be written.
std::unique_ptr<std::ofstream> open_artifact(const char* cmd,
                                             const char* flag,
                                             const std::string& path);

}  // namespace hispar::core
