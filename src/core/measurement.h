// The measurement campaign (§3.1).
//
// Reproduces the paper's fetch protocol over a Hispar list:
//  * shuffle the landing pages, load each 10 times with a cold browser
//    cache (we take per-metric medians over the loads);
//  * fetch each internal page once (the population of internal samples
//    captures the variance, §3.1 fn. 2);
//  * leave >= 5 s between consecutive fetches (ethics, §3.1);
//  * derive every metric from the HAR + Navigation Timing data the
//    browser emits — CDN classification, tracker counts and header
//    bidding are *detected* from the HAR (cdnfinder heuristics, EasyList
//    matching, HB endpoint patterns), not read from generator ground
//    truth.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "browser/adblock.h"
#include "browser/hb_detect.h"
#include "browser/loader.h"
#include "cdn/detection.h"
#include "core/hispar.h"
#include "net/doh.h"
#include "net/faults.h"
#include "net/latency.h"
#include "net/outage.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "util/intern.h"
#include "web/generator.h"

namespace hispar::core {

struct PageMetrics {
  double bytes = 0.0;
  double objects = 0.0;
  double plt_ms = 0.0;
  double on_load_ms = 0.0;
  double speed_index_ms = 0.0;
  double noncacheable_objects = 0.0;
  double cacheable_bytes_fraction = 0.0;
  double cdn_bytes_fraction = 0.0;  // detected via cdnfinder heuristics
  double x_cache_hits = 0.0;
  double x_cache_misses = 0.0;
  std::array<double, 9> mix_fractions{};   // byte share per MimeCategory
  std::array<double, 6> depth_counts{};    // objects at depth 0..4, 5+
  double unique_domains = 0.0;
  double hints_total = 0.0;
  double handshakes = 0.0;
  double handshake_time_ms = 0.0;
  double dns_lookups = 0.0;
  double dns_time_ms = 0.0;
  bool is_http = false;
  bool mixed_content = false;
  double tracking_requests = 0.0;  // EasyList-style blocked requests
  bool header_bidding = false;
  double hb_ad_slots = 0.0;
  std::set<std::string> third_parties;   // registrable domains
  // Per-object wait phase (§5.6, Fig. 7), in HAR fetch order. Capped at
  // CampaignConfig::wait_sample_cap samples per load (default 60): the
  // first cap entries are kept, the rest dropped — a memory bound, not
  // a statistical choice, so pages with more objects than the cap
  // under-sample their tail. median_metrics() concatenates the samples
  // of every usable load. The number of dropped samples is exported as
  // the `loader.wait_samples_dropped` counter when observability is on.
  std::vector<double> wait_samples_ms;
};

// One attempted page fetch (landing round or internal page) and how it
// ended. The paper's crawl logged exactly this — which loads failed and
// were discarded — so campaigns record it alongside the metrics
// ("Web Execution Bundles": reproducibility needs the failures too).
struct FetchOutcome {
  std::size_t page_index = 0;
  int load_ordinal = 0;   // landing round; 0 for internal pages
  int attempts = 1;       // campaign-level attempts consumed (1 = no retry)
  browser::LoadStatus status = browser::LoadStatus::kOk;  // final attempt
  net::FaultKind failure = net::FaultKind::kNone;  // root cause when failed
  int failed_objects = 0;  // in the load that was kept
  // Objects an open circuit breaker failed fast (0 unless the campaign
  // runs under a chaos profile; see CampaignConfig::chaos).
  int breaker_denials = 0;

  bool operator==(const FetchOutcome&) const = default;
};

struct SiteObservation {
  std::string domain;
  std::size_t bootstrap_rank = 0;
  web::SiteCategory category = web::SiteCategory::kNews;
  PageMetrics landing;                  // per-metric median of the loads
  std::vector<PageMetrics> internals;   // one per internal page

  // Failure accounting (empty/false on a reliable substrate).
  std::vector<FetchOutcome> outcomes;   // one per attempted page fetch
  int total_retries = 0;                // campaign-level re-fetches
  // No landing load ever succeeded: the site is dropped from analyses
  // and reported, mirroring the paper discarding such sites.
  bool quarantined = false;

  // Fraction of page fetches that produced a usable (non-failed) load.
  double success_rate() const;
  // Some load failed or came back partial: analyses flag the site
  // instead of letting its thinner data skew medians silently.
  bool degraded() const;

  // Median of an internal-page metric.
  double internal_median(
      const std::function<double(const PageMetrics&)>& fn) const;
  // Union of third parties across internal pages.
  std::set<std::string> internal_third_parties() const;
};

// Aggregate failure accounting for a campaign (`hispar measure` prints
// this as its summary line).
struct CampaignSummary {
  std::size_t sites_ok = 0;
  std::size_t sites_degraded = 0;
  std::size_t sites_quarantined = 0;
  std::uint64_t total_retries = 0;
  std::uint64_t failed_fetches = 0;    // page fetches with no usable load
  std::uint64_t degraded_fetches = 0;  // usable but partial loads
};

CampaignSummary summarize_campaign(const std::vector<SiteObservation>& sites);

struct CampaignConfig {
  int landing_loads = 10;
  std::uint64_t seed = 20200312;  // H1K bootstrap date (§3.1)
  double inter_fetch_gap_s = 5.0;
  net::Region vantage = net::Region::kNorthAmerica;
  // Per-vantage substrate knobs. The defaults reproduce the historical
  // single-vantage substrate byte for byte (they are exactly what the
  // campaign used to hardcode); VantageCampaign overrides them per
  // vantage profile. Non-default values join the checkpoint digest.
  net::LatencyConfig latency;        // last-mile / inter-region shape
  net::ResolverConfig resolver;      // ISP-style local resolver
  bool use_doh = false;              // route lookups through DoH
  net::DohConfig doh;
  // Pin CDN traffic to one edge region (anycast mis-routing); wired
  // into both the CDN hierarchy and the loader so the cache and the
  // client RTT describe the same PoP.
  std::optional<net::Region> cdn_edge_pin;
  browser::LoadOptions load_options;  // ablation switches pass through
  std::size_t wait_sample_cap = 60;
  // Worker threads for run(). 0 = one per hardware thread. Results are
  // bit-identical for every value of `jobs` — only `shards` affects them.
  std::size_t jobs = 1;
  // Cache-warmth domains ("vantage points"): each site is assigned to a
  // shard by a stable hash of its domain, and each shard owns isolated
  // DNS/CDN/clock state plus an RNG forked from the campaign seed by
  // shard id. Changing `shards` changes cache-warmth coupling between
  // sites (and therefore metrics); changing `jobs` never does.
  std::size_t shards = 8;
  // Fault injection over the substrate (default: all rates zero, which
  // is a true no-op — outputs are bit-identical to a campaign without
  // fault support). Fault decisions are keyed by (seed, shard, domain,
  // page, ordinal, attempt), so the determinism guarantee above holds
  // under faults too.
  net::FaultProfile fault_profile;
  // Correlated-outage chaos schedule (default: empty, a true no-op —
  // outputs are bit-identical to a campaign without chaos support).
  // When non-empty, the campaign materializes the schedule against
  // `seed` (windows keyed by (seed, scope, window_ordinal)), consults
  // the resulting oracle per fetch stage, and arms the defense layer:
  // per-shard circuit breakers, hedged DNS lookups and deadline-budget
  // propagation. Strike decisions are keyed like fault decisions, so
  // the --jobs / kill+resume determinism guarantees hold under chaos.
  net::OutageSchedule chaos;
  // Failed page loads are re-fetched up to this many times, with an
  // exponential backoff gap on the shard clock between attempts
  // (doubling, capped at 32x the base).
  int max_page_retries = 2;
  double retry_backoff_s = 15.0;  // base gap; doubles per retry
  // Page-level watchdog handed to the loader on every fetch (faulty or
  // not — a fault-free pathological page must not run unbounded).
  double page_timeout_s = 60.0;
  // When non-empty, run() appends each completed shard's observations
  // to this file and, if the file already exists, resumes from it:
  // completed shards are spliced in and only the rest re-run. Because a
  // shard is the unit of isolated state, a resumed campaign's output is
  // bit-identical to an uninterrupted run.
  std::string checkpoint_path;
  // Observability (metrics/tracing). Never affects measurements — the
  // instrumentation draws no randomness and never touches a clock — so
  // it is excluded from the checkpoint digest, and per-shard telemetry
  // is checkpointed alongside observations so resumed campaigns export
  // bit-identical telemetry too.
  obs::ObsOptions observability;
};

// Memoization tables for the HAR detectors (CDN classification,
// EasyList matching, HB patterns, registrable domains). Profiling a
// campaign shows the glob scans dominating its CPU (~75 pattern walks
// per HAR entry); every detector is a pure function of the fields the
// memo key captures, so replaying a cached verdict is result-identical
// to re-running the scan. Tables live per worker — like the resolver
// cache — and their size is bounded by the worker's distinct
// URLs/hosts/header tuples.
struct DetectionScratch {
  // (host, CNAME, headers) tuple -> CdnDetector::classify().via_cdn.
  // Keys are built in `key_buf` (reused) as newline-joined fields; a
  // present CNAME is prefixed '@' so "no CNAME" and "empty CNAME"
  // cannot collide.
  util::SymbolTable fetch_keys;
  std::vector<char> via_cdn;
  std::string key_buf;
  // URL -> {EasyList block, HB exchange, HB ad creative} bit flags.
  util::SymbolTable urls;
  std::vector<std::uint8_t> url_flags;
  // Host -> registrable domain.
  util::SymbolTable hosts;
  std::vector<std::string> registrable;
  // Per-load distinct-host / distinct-URL buffers replicating
  // HbDetector::analyze()'s aggregation (views into the HAR).
  std::vector<std::string_view> hb_hosts;
  std::vector<std::string_view> hb_urls;
};

// Derives every PageMetrics field from one load's HAR + timing data,
// memoizing detector verdicts in `scratch`. Shared by the measurement
// and session campaigns (both must classify HARs identically for the
// cold-vs-warm contrast to be apples-to-apples). `metrics` (nullable)
// receives the wait-samples-dropped counter when observability is on.
PageMetrics extract_page_metrics(const web::WebPage& page,
                                 const browser::LoadResult& result,
                                 DetectionScratch& scratch,
                                 const browser::AdBlocker& adblock,
                                 const browser::HbDetector& hb,
                                 const cdn::CdnDetector& detector,
                                 std::size_t wait_sample_cap,
                                 obs::MetricsRegistry* metrics);

class MeasurementCampaign {
 public:
  MeasurementCampaign(const web::SyntheticWeb& web, CampaignConfig config = {});

  // Fetch and measure every URL set in the list. Sites are partitioned
  // into `config.shards` shards by domain hash; shards run concurrently
  // on up to `config.jobs` threads and the observations are merged back
  // into list order. Output is identical for any `jobs`.
  std::vector<SiteObservation> run(const HisparList& list);

  // Measure one explicit set of pages of one site (used by the §4
  // limited exhaustive crawl and the examples). Runs on a persistent
  // single-vantage-point state (shard id 0) so repeated calls share
  // DNS/CDN warmth, like the serial campaign did.
  SiteObservation measure_site(const web::WebSite& site,
                               const std::vector<std::size_t>& internal_pages);

  // Per-metric median over repeat loads of one page. Doubles take the
  // field-wise median; `is_http`/`header_bidding` take a strict majority
  // vote and `mixed_content` is true if any load saw it (the paper flags
  // a site if any load shows mixed content). Exposed for tests.
  static PageMetrics median_metrics(const std::vector<PageMetrics>& loads);

  // Fingerprint of everything that determines run() output for a given
  // list (seed, shards, loads, fault profile, retries, ablations,
  // non-default substrate knobs, and the list itself — but never
  // `jobs`, and never the observability options, which cannot change
  // results). Guards checkpoint resume against a mismatched campaign.
  // Delegates to the free function campaign_config_digest below.
  std::uint64_t checkpoint_digest(const HisparList& list) const;

  // Merged telemetry of the last run() (empty/disabled unless
  // config.observability.enabled). Deterministic: per-shard registries
  // and span lists are folded in shard-id order.
  const obs::RunTelemetry& telemetry() const { return telemetry_; }

  // What one shard hands back to an external scheduler: its drained
  // telemetry (empty when observability is off) and final breaker
  // records (empty unless a chaos schedule armed them).
  struct ShardRun {
    obs::ShardTelemetry telemetry;
    std::vector<net::BreakerSet::Record> breakers;
  };

  // One shard-granular slice of run(), for schedulers that interleave
  // shards of several campaigns (the multi-vantage (vantage, shard)
  // pool): builds the shard's isolated state on the calling thread,
  // runs the §3.1 fetch protocol over `positions` (as produced by
  // shard_indices for this shard), and writes each result into
  // observations[position]. Safe to call concurrently for distinct
  // shards of the same campaign — workers only read the shared
  // detectors/config and write disjoint output slots.
  ShardRun run_one_shard(std::size_t shard, const HisparList& list,
                         const std::vector<std::size_t>& positions,
                         std::vector<SiteObservation>& observations);

 private:
  // Everything one worker mutates while measuring its shard: the full
  // network/CDN simulation substrate, a virtual clock, and an RNG forked
  // from the campaign seed by shard id. One shard models one vantage
  // point; cache warmth never crosses shards.
  struct ShardState {
    ShardState(const web::SyntheticWeb& web, const CampaignConfig& config,
               std::size_t shard_id);
    ShardState(const ShardState&) = delete;
    ShardState& operator=(const ShardState&) = delete;

    net::LatencyModel latency;
    cdn::CdnHierarchy cdn;
    net::CachingResolver resolver;
    // DoH wrapper around `resolver`; null unless config.use_doh.
    // Declared before `loader` so the loader env can point at it.
    std::unique_ptr<net::DohResolver> doh;
    // Shard-private telemetry (null when observability is off); declared
    // before `loader` so the loader env can point into them. The
    // registry/tracer are heap-held so instrumentation pointers stay
    // stable for the shard's lifetime.
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<obs::Tracer> tracer;
    std::size_t shard_id = 0;
    browser::PageLoader loader;
    util::Rng rng;
    double clock_s = 0.0;
    // Defense-layer circuit breakers, one per blast radius this shard
    // touched. Untouched (and never consulted) unless the campaign runs
    // under a chaos schedule, so chaos-free runs stay bit-identical.
    net::BreakerSet breakers;
    // Page materialization cache and detector memos. Both are pure
    // caches: attaching or clearing them never changes campaign output.
    // The page cache is deliberately NOT wired into the shard's metrics
    // registry — its counters would alter the exported telemetry bytes,
    // and the campaign's contract is that this optimization pass leaves
    // every artifact bit-identical (tests/test_golden.cpp pins this).
    web::PageCache pages;
    DetectionScratch detect;

    obs::ShardObs obs_handle(const CampaignConfig& config) const;
    // Drains the shard's telemetry (moves the registry out).
    obs::ShardTelemetry take_telemetry();
  };

  // One campaign-level page fetch: up to 1 + max_page_retries load
  // attempts with backoff gaps on the shard clock.
  struct PageFetch {
    PageMetrics metrics;
    FetchOutcome outcome;
    bool usable = false;  // metrics are meaningful (load did not fail)
  };

  PageFetch fetch_page(ShardState& state, const web::WebSite& site,
                       std::size_t page_index, int load_ordinal);
  // Derives every metric from the HAR; hits `state.detect`'s memo
  // tables instead of re-running the detector pattern scans, and feeds
  // `state.metrics` when observability is on.
  PageMetrics extract_metrics(ShardState& state, const web::WebPage& page,
                              const browser::LoadResult& result) const;
  // Serial §3.1 fetch protocol over the sites of one shard (positions
  // into list.sets); writes each result to observations[position].
  void run_shard(ShardState& state, const HisparList& list,
                 const std::vector<std::size_t>& positions,
                 std::vector<SiteObservation>& observations);
  const web::WebSite& require_site(const std::string& domain) const;

  const web::SyntheticWeb* web_;
  CampaignConfig config_;
  // Detectors are built once per campaign and shared read-only by all
  // workers (their classify/analyze paths are const and stateless).
  browser::AdBlocker adblock_;
  browser::HbDetector hb_;
  cdn::CdnDetector detector_;
  // config_.chaos materialized against config_.seed once per campaign;
  // shared read-only by every shard (window activity queries are pure).
  net::OutagePlan chaos_plan_;
  obs::RunTelemetry telemetry_;  // merged by the last run()
  ShardState local_;  // measure_site() state
};

// Folds per-shard telemetry (indexed by shard id) into `telemetry`
// exactly as MeasurementCampaign::run() merges its workers:
// counters/histograms sum, gauges are prefixed "shard.<id>.", spans
// concatenate behind one campaign-level span whose duration is the
// slowest shard's virtual clock, and the span-drop count lands in the
// "trace.spans_dropped" counter. Shared with VantageCampaign so a
// vantage's telemetry assembled from (vantage, shard) units is
// byte-identical to the inner campaign's own merge.
void merge_campaign_telemetry(obs::RunTelemetry& telemetry,
                              const std::vector<obs::ShardTelemetry>& shards);

// Assembles the structured run report from a campaign's observations
// and (possibly disabled/empty) merged telemetry. Lives here rather
// than in obs/ because it reads SiteObservation and FaultKind.
obs::RunReport build_run_report(const std::vector<SiteObservation>& sites,
                                const obs::RunTelemetry& telemetry);

// Digest of everything that determines MeasurementCampaign::run()
// output for `config` over `list`. Substrate knobs contribute only
// when they differ from the defaults, so digests of historical
// campaigns (and their on-disk checkpoints) are unchanged.
// VantageCampaign digests each derived per-vantage config through this.
std::uint64_t campaign_config_digest(const CampaignConfig& config,
                                     const HisparList& list);

// Fail-fast validation shared by the CLI and tests: a campaign accepts
// shards > sites, but the partition is then silently degenerate (empty
// shards), which `hispar` treats as user error. Throws
// std::invalid_argument with `context` prefixed to the message.
void validate_shard_count(const std::string& context, std::size_t shards,
                          std::size_t sites);

}  // namespace hispar::core
