// Per-figure analyses over a measurement campaign.
//
// Each function computes exactly the statistic a paper figure/table
// reports; benches render them, tests assert their shape against the
// paper's numbers (EXPERIMENTS.md records the comparison).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/measurement.h"
#include "util/ks_test.h"
#include "util/stats.h"

namespace hispar::core {

using MetricFn = std::function<double(const PageMetrics&)>;

// A site contributes to an analysis only if it has a usable landing
// observation and at least one usable internal page. Quarantined sites
// (every landing load failed) and sites whose internal fetches all
// failed carry no measurable pair — the paper likewise dropped sites it
// could not crawl. On a fault-free substrate every site is usable, so
// the filters below are exact no-ops.
bool usable_site(const SiteObservation& site);

// Paired landing-vs-internal comparison of one metric (the paper's
// standard analysis: per site, landing value minus the median of the
// internal values; Figs. 2, 4a, 4b, 5, 6c).
struct PairedComparison {
  std::vector<double> landing;          // per usable site (list order)
  std::vector<double> internal_median;  // per usable site
  // Failure accounting: sites dropped entirely (quarantined or no
  // internals), and kept sites with some failed/partial loads behind
  // their medians.
  std::size_t excluded_sites = 0;
  std::size_t partial_sites = 0;

  std::vector<double> deltas() const;   // landing - internal_median
  // Fraction of sites where the landing value exceeds the internal
  // median (the paper's headline percentages).
  double fraction_landing_greater() const;
  // Geometric mean of landing/internal ratios over sites where both are
  // positive ("landing pages are, on average, 34% larger").
  double geomean_ratio() const;
};

PairedComparison compare_metric(const std::vector<SiteObservation>& sites,
                                const MetricFn& fn);

// Two-sample KS test between the landing population and the internal
// population of a metric (the paper's D values).
util::KsResult ks_landing_vs_internal(
    const std::vector<SiteObservation>& sites, const MetricFn& fn);

// All internal-page samples of a metric (for CDFs).
std::vector<double> internal_values(const std::vector<SiteObservation>& sites,
                                    const MetricFn& fn);
std::vector<double> landing_values(const std::vector<SiteObservation>& sites,
                                   const MetricFn& fn);

// Fig. 9 / Fig. 10: per-rank-bin medians of the per-site delta; sites
// must be ordered by bootstrap rank (they are, in a built list).
std::vector<double> delta_by_rank_bin(
    const std::vector<SiteObservation>& sites, const MetricFn& fn,
    std::size_t bins = 10);

// §5.2 content mix: median byte-share per MIME category and page type.
struct ContentMix {
  std::array<double, 9> landing_median{};
  std::array<double, 9> internal_median{};
};
ContentMix content_mix(const std::vector<SiteObservation>& sites);

// §5.4: median object count per depth (1..4, 5+) per page type.
struct DepthProfile {
  std::array<double, 6> landing_median{};   // depth 0..4, 5+
  std::array<double, 6> internal_median{};
  std::array<double, 6> landing_p90{};
  std::array<double, 6> internal_p90{};
};
DepthProfile depth_profile(const std::vector<SiteObservation>& sites);

// §5.5 resource hints: fraction of pages with zero hints, hint-count
// samples for CDFs.
struct HintUsage {
  double landing_with_hints = 0.0;   // fraction of landing pages >= 1 hint
  double internal_without_hints = 0.0;  // fraction of internal pages == 0
  std::vector<double> landing_counts;
  std::vector<double> internal_counts;
};
HintUsage hint_usage(const std::vector<SiteObservation>& sites);

// §5.1 X-Cache: aggregate hit ratio per page type.
struct XCacheSummary {
  double landing_hit_ratio = 0.0;
  double internal_hit_ratio = 0.0;
};
XCacheSummary x_cache_summary(const std::vector<SiteObservation>& sites);

// Fig. 7: per-object wait-time samples per page type.
struct WaitTimes {
  std::vector<double> landing_ms;
  std::vector<double> internal_ms;
};
WaitTimes wait_times(const std::vector<SiteObservation>& sites);

// §6.1 security: counts per the paper's Fig. 8a discussion.
struct SecuritySummary {
  int http_landing_sites = 0;
  int sites_with_http_internal = 0;       // >= 1 HTTP internal page
  int sites_with_10plus_http_internal = 0;
  int mixed_landing_sites = 0;
  int sites_with_mixed_internal = 0;
  std::vector<double> insecure_internal_counts;  // per site
};
SecuritySummary security_summary(const std::vector<SiteObservation>& sites);

// §6.2 Fig. 8b: per-site count of third parties seen on internal pages
// but never on the landing page.
std::vector<double> unseen_third_parties(
    const std::vector<SiteObservation>& sites);

// §6.3 header bidding.
struct HbSummary {
  int sites_with_hb_landing = 0;
  int sites_with_hb_internal_only = 0;
  std::vector<double> landing_slots;   // sites with HB
  std::vector<double> internal_slots;
};
HbSummary hb_summary(const std::vector<SiteObservation>& sites);

// Fig. 10c: PLT delta (landing - internal median, seconds) restricted to
// one category.
std::vector<double> plt_delta_for_category(
    const std::vector<SiteObservation>& sites, web::SiteCategory category);

// --- Cross-vantage disagreement (multi-vantage campaigns) ---
//
// How much the paper's headline landing-vs-internal deltas depend on
// where you measure from. Per consensus metric and per site that is
// usable at *every* vantage, the per-vantage delta is
// fn(landing) - median over internals of fn; the spread is the max-min
// range of that delta across vantages, and a sign flip means the
// landing-vs-internal *direction* itself disagrees between vantages —
// the strongest form of single-vantage blindness.

// The fixed metric set the consensus analysis covers (name, accessor).
struct ConsensusMetric {
  const char* name;
  double (*fn)(const PageMetrics&);
};
// bytes, objects, plt_ms, speed_index_ms, cdn_bytes_fraction,
// handshakes — in this order everywhere (spread lines, consensus CSV).
const std::vector<ConsensusMetric>& consensus_metrics();

struct VantageSpreadLine {
  std::string metric;
  // Median / max over compared sites of the cross-vantage delta range.
  // NaN when no site is usable at every vantage (the documented
  // util::stats empty-input policy).
  double median_spread = 0.0;
  double max_spread = 0.0;
  // Fraction of compared sites whose delta sign differs between
  // vantages.
  double sign_flip_fraction = 0.0;
};

struct VantageDisagreement {
  std::size_t vantages = 0;
  std::size_t sites_total = 0;
  std::size_t sites_compared = 0;  // usable at every vantage
  std::vector<VantageSpreadLine> metrics;  // consensus_metrics() order
};

// per_vantage[v] is vantage v's observation list; all lists must be the
// same length (same HisparList) or std::invalid_argument is thrown.
// Works for a single vantage too (all spreads 0, no sign flips).
VantageDisagreement vantage_disagreement(
    const std::vector<std::vector<SiteObservation>>& per_vantage);

// Per-site consensus CSV: one row per site usable at every vantage,
// with, per consensus metric, the cross-vantage median delta, the
// spread, and whether the delta sign agrees at every vantage.
// Header: domain,rank,vantages then
// <metric>_delta_median,<metric>_spread,<metric>_sign_consistent per
// metric. Byte-stable (default double formatting, like
// write_measure_csv).
void write_vantage_consensus_csv(
    std::ostream& out,
    const std::vector<std::vector<SiteObservation>>& per_vantage);

// --- Cold-vs-warm browsing-session contrast ---
//
// The paper measures every page with a cold profile (§3.1) but frames
// the landing/internal cacheability gap around users who reach internal
// pages *through* the landing page with a warm browser cache (§5.1).
// This analysis quantifies exactly that: per consensus metric, the
// landing-minus-internal-median gap under the cold regime and under
// warm session replay, as medians over the sites usable in both runs.

struct ColdWarmMetricLine {
  std::string metric;
  bool has_values = false;  // some site usable in both regimes
  double cold_landing_median = 0.0;
  double cold_internal_median = 0.0;
  double warm_landing_median = 0.0;
  double warm_internal_median = 0.0;

  double cold_gap() const { return cold_landing_median - cold_internal_median; }
  double warm_gap() const { return warm_landing_median - warm_internal_median; }
};

struct ColdWarmDelta {
  std::size_t sites_total = 0;
  std::size_t sites_compared = 0;  // usable in both regimes
  std::vector<ColdWarmMetricLine> metrics;  // consensus_metrics() order
};

// `cold` and `warm` are observation lists over the same HisparList
// (same length and site order) or std::invalid_argument is thrown.
ColdWarmDelta cold_warm_delta(const std::vector<SiteObservation>& cold,
                              const std::vector<SiteObservation>& warm);

// Per-site browser-cache CSV for a session campaign: one row per site,
// in list order, with the session's cache counters and warm-hit ratio.
// Header: domain,rank,lookups,fresh_hits,revalidations,misses,
// insertions,evictions,warm_hit_ratio. `stats` is parallel to `sites`
// (std::invalid_argument otherwise). Byte-stable (default double
// formatting, like write_measure_csv).
void write_warm_hits_csv(std::ostream& out,
                         const std::vector<SiteObservation>& sites,
                         const std::vector<browser::CacheStats>& stats);

// Standard metric accessors.
namespace metric {
inline double bytes(const PageMetrics& m) { return m.bytes; }
inline double objects(const PageMetrics& m) { return m.objects; }
inline double plt_ms(const PageMetrics& m) { return m.plt_ms; }
inline double speed_index_ms(const PageMetrics& m) { return m.speed_index_ms; }
inline double noncacheable(const PageMetrics& m) {
  return m.noncacheable_objects;
}
inline double cdn_bytes_fraction(const PageMetrics& m) {
  return m.cdn_bytes_fraction;
}
inline double unique_domains(const PageMetrics& m) { return m.unique_domains; }
inline double handshakes(const PageMetrics& m) { return m.handshakes; }
inline double handshake_time_ms(const PageMetrics& m) {
  return m.handshake_time_ms;
}
inline double tracking_requests(const PageMetrics& m) {
  return m.tracking_requests;
}
inline double hints_total(const PageMetrics& m) { return m.hints_total; }
}  // namespace metric

}  // namespace hispar::core
