#include "core/session.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/analyses.h"
#include "core/parallel.h"
#include "core/serialization.h"
#include "util/rng.h"

namespace hispar::core {

namespace {

// Same retry-backoff ceiling as the measurement campaign (the exponent
// is clamped before exp2; see measurement.cpp).
constexpr double kMaxRetryBackoffScale = 32.0;

cdn::CdnHierarchyConfig cdn_config_for(const CampaignConfig& config) {
  cdn::CdnHierarchyConfig hierarchy;
  hierarchy.edge_pin = config.cdn_edge_pin;
  return hierarchy;
}

// Everything one browsing session mutates: the full network/CDN
// substrate, a virtual clock from 0, and an RNG forked from the
// campaign seed by domain — the session-scoped mirror of
// MeasurementCampaign::ShardState. Sessions never share state, so the
// output is independent of both the shard count and the job count.
struct SessionSubstrate {
  SessionSubstrate(const web::SyntheticWeb& web, const CampaignConfig& config,
                   const std::string& domain, std::size_t position)
      : latency(config.latency),
        cdn(web.cdn_registry(), latency, cdn_config_for(config)),
        resolver(config.resolver, latency),
        doh(config.use_doh
                ? std::make_unique<net::DohResolver>(resolver, config.doh)
                : nullptr),
        metrics(config.observability.enabled
                    ? std::make_unique<obs::MetricsRegistry>()
                    : nullptr),
        tracer(config.observability.enabled
                   ? std::make_unique<obs::Tracer>(config.observability.span_cap)
                   : nullptr),
        position(position),
        loader(browser::LoaderEnv{&latency, &web.cdn_registry(), &cdn,
                                  &resolver, config.vantage,
                                  obs_handle(config), doh.get(),
                                  config.cdn_edge_pin}),
        rng(util::Rng(config.seed).fork("session").fork(domain)) {
    resolver.set_metrics(metrics.get());
    cdn.set_metrics(metrics.get());
  }
  SessionSubstrate(const SessionSubstrate&) = delete;
  SessionSubstrate& operator=(const SessionSubstrate&) = delete;

  obs::ShardObs obs_handle(const CampaignConfig& config) const {
    obs::ShardObs handle;
    handle.metrics = metrics.get();
    handle.trace = tracer.get();
    handle.tid = static_cast<std::uint32_t>(position) + 1;
    handle.trace_objects = config.observability.trace_objects;
    return handle;
  }

  net::LatencyModel latency;
  cdn::CdnHierarchy cdn;
  net::CachingResolver resolver;
  std::unique_ptr<net::DohResolver> doh;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;
  std::size_t position = 0;
  browser::PageLoader loader;
  util::Rng rng;
  double clock_s = 0.0;
  net::BreakerSet breakers;
  web::PageCache pages;
  DetectionScratch detect;
};

}  // namespace

SessionCampaign::SessionCampaign(const web::SyntheticWeb& web,
                                 SessionConfig config)
    : web_(&web),
      config_(std::move(config)),
      adblock_(browser::AdBlocker::easylist_lite()),
      hb_(browser::HbDetector::standard()),
      detector_(web.cdn_registry()),
      chaos_plan_(config_.base.chaos, config_.base.seed) {}

std::vector<std::size_t> SessionCampaign::session_pages(
    std::uint64_t seed, const UrlSet& set, std::size_t session_len) {
  std::vector<std::size_t> pages;
  if (set.page_indices.empty()) return pages;
  pages.push_back(set.page_indices.front());  // the landing page
  std::vector<std::size_t> internals(set.page_indices.begin() + 1,
                                     set.page_indices.end());
  // Fisher-Yates under a stream keyed by (seed, domain) only — the
  // visit order is a property of the list, not of the partitioning.
  util::Rng rng =
      util::Rng(seed).fork("session").fork(set.domain).fork("order");
  for (std::size_t i = internals.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(internals[i - 1], internals[j]);
  }
  const std::size_t take = std::min(session_len, internals.size());
  pages.insert(pages.end(), internals.begin(),
               internals.begin() + static_cast<std::ptrdiff_t>(take));
  return pages;
}

SessionCampaign::SessionResult SessionCampaign::run_session(
    const HisparList& list, std::size_t position) {
  const UrlSet& set = list.sets[position];
  const web::WebSite* site = web_->find_site(set.domain);
  if (site == nullptr)
    throw std::logic_error("session campaign: unknown domain " + set.domain);

  const CampaignConfig& base = config_.base;
  SessionSubstrate state(*web_, base, set.domain, position);
  // The client state this session threads across its pages. Allocated
  // even for a cold replay (warm == false) so stats stay well-defined,
  // but never handed to the loader then — a cold session is load-by-load
  // identical to the measurement campaign's protocol.
  browser::SessionState client(config_.cache_bytes);

  const bool faulty = base.fault_profile.enabled();
  const bool chaotic = chaos_plan_.enabled();
  const int max_attempts =
      (faulty || chaotic) ? 1 + std::max(0, base.max_page_retries) : 1;
  // Fault/chaos streams are keyed like the measurement campaign's but
  // under the "session" namespace, so a session campaign and a cold
  // campaign over the same seed draw independent fault decisions.
  const util::Rng fault_base =
      util::Rng(base.seed).fork("session").fork("faults").fork(set.domain);
  const util::Rng chaos_base =
      util::Rng(base.seed).fork("session").fork("chaos-roll").fork(set.domain);

  SessionResult result;
  SiteObservation& observation = result.observation;
  observation.domain = set.domain;
  observation.bootstrap_rank = set.bootstrap_rank;
  observation.category = site->profile().category;

  const std::vector<std::size_t> pages =
      session_pages(base.seed, set, config_.session_len);

  // One campaign-level fetch of `page_index` (with retries, mirroring
  // MeasurementCampaign::fetch_page) through this session's loader and
  // client state. Returns whether a usable load landed in `metrics`.
  const auto fetch = [&](std::size_t page_index, PageMetrics& metrics,
                         FetchOutcome& outcome) {
    const web::WebPage& page = state.pages.get(*site, page_index);
    outcome.page_index = page_index;
    outcome.load_ordinal = 0;  // every session page is fetched once

    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      browser::LoadOptions options = base.load_options;
      options.start_time_s = state.clock_s;
      options.page_timeout_ms = base.page_timeout_s * 1000.0;
      options.session = config_.warm ? &client : nullptr;
      state.clock_s += base.inter_fetch_gap_s;

      util::Rng load_rng =
          state.rng.fork(page_index).fork(static_cast<std::uint64_t>(0));
      if (attempt > 0)
        load_rng =
            load_rng.fork("retry").fork(static_cast<std::uint64_t>(attempt));

      std::optional<net::FaultInjector> injector;
      if (faulty) {
        injector.emplace(base.fault_profile,
                         fault_base.fork(page_index)
                             .fork(static_cast<std::uint64_t>(0))
                             .fork(static_cast<std::uint64_t>(attempt)));
        options.faults = &*injector;
      }
      std::optional<net::ChaosInjector> chaos_injector;
      if (chaotic) {
        chaos_injector.emplace(chaos_plan_,
                               chaos_base.fork(page_index)
                                   .fork(static_cast<std::uint64_t>(0))
                                   .fork(static_cast<std::uint64_t>(attempt)));
        options.chaos = &*chaos_injector;
        options.breakers = &state.breakers;
        options.hedge_dns = true;
        options.deadline_budget = true;
      }

      const browser::LoadResult load = state.loader.load(page, load_rng, options);
      outcome.attempts = attempt + 1;
      outcome.status = load.status;
      outcome.failure = load.root_failure;
      outcome.failed_objects = load.failed_objects;
      outcome.breaker_denials = load.breaker_denials;

      if (state.metrics != nullptr) {
        obs::MetricsRegistry& reg = *state.metrics;
        ++reg.counter("loader.loads");
        reg.counter("loader.objects") += load.har.entries.size();
        reg.counter("loader.bytes") +=
            static_cast<std::uint64_t>(std::llround(load.har.total_bytes()));
        reg.counter("loader.handshakes") +=
            static_cast<std::uint64_t>(load.handshakes);
        reg.counter("loader.object_retries") +=
            static_cast<std::uint64_t>(load.object_retries);
        reg.counter("loader.failed_objects") +=
            static_cast<std::uint64_t>(load.failed_objects);
        if (load.watchdog_abort) ++reg.counter("loader.watchdog_aborts");
        if (injector) {
          const auto& injected = injector->injected();
          for (int kind = 1; kind < net::kFaultKindCount; ++kind)
            if (injected[static_cast<std::size_t>(kind)] > 0)
              reg.counter("faults.injected." +
                          std::string(net::to_string(
                              static_cast<net::FaultKind>(kind)))) +=
                  injected[static_cast<std::size_t>(kind)];
        }
        if (chaos_injector) {
          const auto& injected = chaos_injector->injected();
          for (int kind = 1; kind < net::kFaultKindCount; ++kind)
            if (injected[static_cast<std::size_t>(kind)] > 0)
              reg.counter("chaos.injected." +
                          std::string(net::to_string(
                              static_cast<net::FaultKind>(kind)))) +=
                  injected[static_cast<std::size_t>(kind)];
        }
        if (load.breaker_denials > 0)
          reg.counter("breaker.denials") +=
              static_cast<std::uint64_t>(load.breaker_denials);
      }
      if (state.tracer != nullptr) {
        obs::TraceSpan span;
        span.name = set.domain;
        span.cat = "load";
        span.ts_us = obs::to_trace_us(options.start_time_s);
        span.dur_us = obs::to_trace_us(load.on_load_ms / 1000.0);
        span.tid = static_cast<std::uint32_t>(position) + 1;
        span.args.emplace_back("page", std::to_string(page_index));
        span.args.emplace_back("attempt", std::to_string(attempt));
        span.args.emplace_back("status",
                               std::string(browser::to_string(load.status)));
        state.tracer->record(std::move(span));
      }

      if (load.status != browser::LoadStatus::kFailed) {
        metrics = extract_page_metrics(page, load, state.detect, adblock_,
                                       hb_, detector_, base.wait_sample_cap,
                                       state.metrics.get());
        return true;
      }
      if (attempt + 1 < max_attempts)
        state.clock_s +=
            base.retry_backoff_s *
            std::min(kMaxRetryBackoffScale,
                     std::exp2(static_cast<double>(std::min(attempt, 62))));
    }
    return false;  // permanently failed
  };

  // The landing page opens the session; if it never loads, the user
  // never reaches the internal pages, so the site is quarantined and
  // the internals are skipped (the cold campaign quarantines exactly
  // the same way when every landing round fails).
  bool landed = false;
  if (!pages.empty()) {
    FetchOutcome outcome;
    PageMetrics metrics;
    landed = fetch(pages.front(), metrics, outcome);
    observation.total_retries += outcome.attempts - 1;
    observation.outcomes.push_back(outcome);
    if (landed) observation.landing = std::move(metrics);
  }
  if (!landed) {
    observation.quarantined = true;
  } else {
    for (std::size_t i = 1; i < pages.size(); ++i) {
      FetchOutcome outcome;
      PageMetrics metrics;
      const bool usable = fetch(pages[i], metrics, outcome);
      observation.total_retries += outcome.attempts - 1;
      observation.outcomes.push_back(outcome);
      if (usable) observation.internals.push_back(std::move(metrics));
    }
  }

  if (config_.warm) result.cache = client.cache.stats();
  if (state.metrics != nullptr && config_.warm) {
    // Session-cache lifetime counters; summed across sessions by the
    // position-ordered merge (sessions set no gauges).
    obs::MetricsRegistry& reg = *state.metrics;
    reg.counter("browser_cache.lookups") = result.cache.lookups;
    reg.counter("browser_cache.fresh_hits") = result.cache.fresh_hits;
    reg.counter("browser_cache.revalidations") = result.cache.revalidations;
    reg.counter("browser_cache.misses") = result.cache.misses;
    reg.counter("browser_cache.insertions") = result.cache.insertions;
    reg.counter("browser_cache.evictions") = result.cache.evictions;
  }
  if (state.tracer != nullptr) {
    obs::TraceSpan span;
    span.name = set.domain;
    span.cat = "session";
    span.ts_us = 0;
    span.dur_us = obs::to_trace_us(state.clock_s);
    span.tid = static_cast<std::uint32_t>(position) + 1;
    state.tracer->record(std::move(span));
  }

  if (state.metrics != nullptr) result.telemetry.metrics = std::move(*state.metrics);
  if (state.tracer != nullptr) {
    result.telemetry.spans = state.tracer->ordered_spans();
    result.telemetry.spans_dropped = state.tracer->dropped();
  }
  result.clock_end_s = state.clock_s;
  return result;
}

std::uint64_t SessionCampaign::checkpoint_digest(const HisparList& list) const {
  std::ostringstream os;
  os << "session-v1|" << campaign_config_digest(config_.base, list) << "|len|"
     << config_.session_len << "|cache|" << config_.cache_bytes << "|warm|"
     << (config_.warm ? 1 : 0);
  return util::fnv1a(os.str());
}

std::vector<SiteObservation> SessionCampaign::run(const HisparList& list) {
  if (config_.session_len == 0)
    throw std::invalid_argument(
        "session campaign: session_len must be >= 1 (a session without "
        "internal pages measures nothing)");

  const std::size_t shard_count = std::max<std::size_t>(1, config_.base.shards);
  const auto shards = shard_indices(list, shard_count);
  std::vector<SiteObservation> observations(list.sets.size());
  cache_stats_.assign(list.sets.size(), browser::CacheStats{});
  std::vector<obs::ShardTelemetry> session_telemetry(list.sets.size());
  telemetry_ = obs::RunTelemetry{};
  telemetry_.enabled = config_.base.observability.enabled;

  // Checkpointing: a session owns fully isolated state, so it is the
  // unit of resume — a session either completed (its observation, cache
  // counters and telemetry are on disk and splice back in) or re-runs
  // from scratch, making a resumed campaign bit-identical to an
  // uninterrupted one.
  std::vector<char> session_done(list.sets.size(), 0);
  std::ofstream checkpoint_out;
  std::mutex checkpoint_mutex;
  if (!config_.checkpoint_path.empty()) {
    const std::uint64_t digest = checkpoint_digest(list);
    std::ifstream existing(config_.checkpoint_path);
    if (existing) {
      SessionCheckpoint checkpoint = read_session_checkpoint(existing);
      if (checkpoint.config_digest != digest)
        throw std::runtime_error(
            "session campaign: checkpoint was written by a different "
            "campaign (seed/session-len/cache/list changed)");
      for (auto& block : checkpoint.sessions) {
        if (block.position >= observations.size()) continue;
        session_done[block.position] = 1;
        observations[block.position] = std::move(block.observation);
        cache_stats_[block.position] = block.cache;
        if (block.has_telemetry)
          session_telemetry[block.position] = std::move(block.telemetry);
      }
      existing.close();
    }
    // (Re)write the file from the parsed state: a resume drops the torn
    // tail a kill may have left, so the file stays cleanly resumable no
    // matter how many times the campaign is interrupted. Written to a
    // temp file and renamed over the original — truncating in place
    // had a kill window that lost already-durable session blocks.
    std::ostringstream rewritten;
    write_session_checkpoint_header(rewritten, digest);
    for (std::size_t position = 0; position < observations.size(); ++position)
      if (session_done[position])
        append_session_block(rewritten, position, observations[position],
                             cache_stats_[position],
                             session_telemetry[position].empty()
                                 ? nullptr
                                 : &session_telemetry[position]);
    replace_file_atomically(config_.checkpoint_path, rewritten.str());
    checkpoint_out.open(config_.checkpoint_path, std::ios::app);
    if (!checkpoint_out)
      throw std::runtime_error("session campaign: cannot open checkpoint " +
                               config_.checkpoint_path);
  }

  // Sessions are embarrassingly parallel (no shared mutable state at
  // all); shards only batch the positions a worker picks up. Every
  // session writes to its own list-position slots, so no
  // synchronization is needed beyond the for_each_shard joins and the
  // checkpoint file mutex.
  for_each_shard(shard_count, config_.base.jobs, [&](std::size_t shard) {
    for (std::size_t position : shards[shard]) {
      if (session_done[position]) continue;
      SessionResult result = run_session(list, position);
      observations[position] = std::move(result.observation);
      cache_stats_[position] = result.cache;
      if (config_.base.observability.enabled)
        session_telemetry[position] = std::move(result.telemetry);
      if (checkpoint_out.is_open()) {
        const std::lock_guard<std::mutex> lock(checkpoint_mutex);
        append_session_block(checkpoint_out, position, observations[position],
                             cache_stats_[position],
                             session_telemetry[position].empty()
                                 ? nullptr
                                 : &session_telemetry[position]);
        checkpoint_out.flush();
      }
    }
  });

  if (config_.base.observability.enabled) {
    // Merge in list-position order: counters/histograms sum (sessions
    // set no gauges), spans concatenate behind one campaign-level span
    // whose duration is the longest session's virtual clock.
    for (std::size_t position = 0; position < session_telemetry.size();
         ++position) {
      const obs::ShardTelemetry& telemetry = session_telemetry[position];
      if (telemetry.empty()) continue;
      telemetry_.metrics.merge_from(
          telemetry.metrics, "session." + std::to_string(position) + ".");
      telemetry_.spans.insert(telemetry_.spans.end(), telemetry.spans.begin(),
                              telemetry.spans.end());
      telemetry_.spans_dropped += telemetry.spans_dropped;
    }
    std::int64_t campaign_end_us = 0;
    for (const auto& span : telemetry_.spans)
      if (span.cat == "session")
        campaign_end_us = std::max(campaign_end_us, span.dur_us);
    obs::TraceSpan campaign_span;
    campaign_span.name = "session campaign";
    campaign_span.cat = "campaign";
    campaign_span.ts_us = 0;
    campaign_span.dur_us = campaign_end_us;
    campaign_span.tid = 0;
    telemetry_.spans.insert(telemetry_.spans.begin(),
                            std::move(campaign_span));
    telemetry_.metrics.counter("trace.spans_dropped") =
        telemetry_.spans_dropped;
  }
  return observations;
}

obs::SessionReport build_session_report(
    const std::vector<SiteObservation>& cold,
    const std::vector<SiteObservation>& warm,
    const std::vector<browser::CacheStats>& stats,
    const obs::RunTelemetry& telemetry, std::size_t session_len) {
  obs::SessionReport report;
  const CampaignSummary summary = summarize_campaign(warm);
  report.sites_total = warm.size();
  report.sessions_ok = summary.sites_ok;
  report.sessions_degraded = summary.sites_degraded;
  report.sessions_quarantined = summary.sites_quarantined;
  report.session_len = session_len;
  for (const auto& site : warm)
    for (const auto& outcome : site.outcomes)
      if (outcome.status != browser::LoadStatus::kFailed)
        ++report.pages_loaded;

  for (const auto& s : stats) {
    report.cache_lookups += s.lookups;
    report.cache_fresh_hits += s.fresh_hits;
    report.cache_revalidations += s.revalidations;
    report.cache_misses += s.misses;
    report.cache_insertions += s.insertions;
    report.cache_evictions += s.evictions;
  }

  const ColdWarmDelta delta = cold_warm_delta(cold, warm);
  for (const auto& line : delta.metrics) {
    obs::SessionReport::MetricLine out;
    out.metric = line.metric;
    out.has_values = line.has_values;
    out.cold_landing_median = line.cold_landing_median;
    out.cold_internal_median = line.cold_internal_median;
    out.warm_landing_median = line.warm_landing_median;
    out.warm_internal_median = line.warm_internal_median;
    report.metric_lines.push_back(std::move(out));
  }

  report.telemetry = telemetry.enabled;
  if (telemetry.enabled) {
    report.trace_spans = telemetry.spans.size();
    report.trace_spans_dropped = telemetry.spans_dropped;
  }
  return report;
}

}  // namespace hispar::core
