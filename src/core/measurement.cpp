#include "core/measurement.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/parallel.h"
#include "core/serialization.h"
#include "util/stats.h"
#include "util/url.h"
#include "web/mime.h"

namespace hispar::core {

double SiteObservation::success_rate() const {
  if (outcomes.empty()) return 1.0;
  std::size_t ok = 0;
  for (const auto& outcome : outcomes)
    if (outcome.status != browser::LoadStatus::kFailed) ++ok;
  return static_cast<double>(ok) / static_cast<double>(outcomes.size());
}

bool SiteObservation::degraded() const {
  if (quarantined) return true;
  for (const auto& outcome : outcomes)
    if (outcome.status != browser::LoadStatus::kOk) return true;
  return false;
}

double SiteObservation::internal_median(
    const std::function<double(const PageMetrics&)>& fn) const {
  if (internals.empty())
    throw std::logic_error("SiteObservation: no internal pages");
  std::vector<double> values;
  values.reserve(internals.size());
  for (const auto& metrics : internals) values.push_back(fn(metrics));
  return util::median(values);
}

std::set<std::string> SiteObservation::internal_third_parties() const {
  std::set<std::string> all;
  for (const auto& metrics : internals)
    all.insert(metrics.third_parties.begin(), metrics.third_parties.end());
  return all;
}

CampaignSummary summarize_campaign(const std::vector<SiteObservation>& sites) {
  CampaignSummary summary;
  for (const auto& site : sites) {
    if (site.quarantined)
      ++summary.sites_quarantined;
    else if (site.degraded())
      ++summary.sites_degraded;
    else
      ++summary.sites_ok;
    summary.total_retries += static_cast<std::uint64_t>(site.total_retries);
    for (const auto& outcome : site.outcomes) {
      if (outcome.status == browser::LoadStatus::kFailed)
        ++summary.failed_fetches;
      else if (outcome.status == browser::LoadStatus::kDegraded)
        ++summary.degraded_fetches;
    }
  }
  return summary;
}

namespace {

// Page-retry backoff doubles per attempt but never past this multiple
// of retry_backoff_s (and the exponent is clamped before exp2 — the
// old `1 << attempt` was undefined behaviour at attempt >= 31).
constexpr double kMaxRetryBackoffScale = 32.0;

cdn::CdnHierarchyConfig cdn_config_for(const CampaignConfig& config) {
  cdn::CdnHierarchyConfig hierarchy;
  hierarchy.edge_pin = config.cdn_edge_pin;
  return hierarchy;
}

}  // namespace

MeasurementCampaign::ShardState::ShardState(const web::SyntheticWeb& web,
                                            const CampaignConfig& config,
                                            std::size_t shard_id)
    : latency(config.latency),
      cdn(web.cdn_registry(), latency, cdn_config_for(config)),
      resolver(config.resolver, latency),
      doh(config.use_doh
              ? std::make_unique<net::DohResolver>(resolver, config.doh)
              : nullptr),
      metrics(config.observability.enabled
                  ? std::make_unique<obs::MetricsRegistry>()
                  : nullptr),
      tracer(config.observability.enabled
                 ? std::make_unique<obs::Tracer>(config.observability.span_cap)
                 : nullptr),
      shard_id(shard_id),
      loader(browser::LoaderEnv{&latency, &web.cdn_registry(), &cdn,
                                &resolver, config.vantage,
                                obs_handle(config), doh.get(),
                                config.cdn_edge_pin}),
      rng(util::Rng(config.seed).fork(static_cast<std::uint64_t>(shard_id))) {
  resolver.set_metrics(metrics.get());
  cdn.set_metrics(metrics.get());
}

obs::ShardObs MeasurementCampaign::ShardState::obs_handle(
    const CampaignConfig& config) const {
  obs::ShardObs handle;
  handle.metrics = metrics.get();
  handle.trace = tracer.get();
  handle.tid = static_cast<std::uint32_t>(shard_id) + 1;
  handle.trace_objects = config.observability.trace_objects;
  return handle;
}

obs::ShardTelemetry MeasurementCampaign::ShardState::take_telemetry() {
  obs::ShardTelemetry telemetry;
  if (metrics != nullptr) telemetry.metrics = std::move(*metrics);
  if (tracer != nullptr) {
    telemetry.spans = tracer->ordered_spans();
    telemetry.spans_dropped = tracer->dropped();
  }
  return telemetry;
}

MeasurementCampaign::MeasurementCampaign(const web::SyntheticWeb& web,
                                         CampaignConfig config)
    : web_(&web),
      config_(config),
      adblock_(browser::AdBlocker::easylist_lite()),
      hb_(browser::HbDetector::standard()),
      detector_(web.cdn_registry()),
      chaos_plan_(config_.chaos, config_.seed),
      local_(web, config_, 0) {}

const web::WebSite& MeasurementCampaign::require_site(
    const std::string& domain) const {
  const web::WebSite* site = web_->find_site(domain);
  if (site == nullptr)
    throw std::logic_error("campaign: unknown domain " + domain);
  return *site;
}

MeasurementCampaign::PageFetch MeasurementCampaign::fetch_page(
    ShardState& state, const web::WebSite& site, std::size_t page_index,
    int load_ordinal) {
  // Materialize through the shard's page cache: the 10 landing rounds
  // (and page-level retries below) reuse one generated WebPage. The
  // reference stays valid across this fetch — only another page of
  // another (site, index) can evict it.
  const web::WebPage& page = state.pages.get(site, page_index);
  const bool faulty = config_.fault_profile.enabled();
  const bool chaotic = chaos_plan_.enabled();
  const int max_attempts =
      (faulty || chaotic) ? 1 + std::max(0, config_.max_page_retries) : 1;

  PageFetch fetch;
  fetch.outcome.page_index = page_index;
  fetch.outcome.load_ordinal = load_ordinal;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    browser::LoadOptions options = config_.load_options;
    options.start_time_s = state.clock_s;
    // The page watchdog applies to every fetch — a fault-free
    // pathological page must not run unbounded (goldens are unaffected:
    // their synthetic pages finish well inside the default 60 s).
    options.page_timeout_ms = config_.page_timeout_s * 1000.0;
    state.clock_s += config_.inter_fetch_gap_s;

    // Attempt 0 uses exactly the pre-fault RNG keying, so a fault-free
    // campaign replays the historical streams bit for bit; retries get
    // fresh forks of the same key.
    util::Rng load_rng = state.rng.fork(site.domain())
                             .fork(page_index)
                             .fork(static_cast<std::uint64_t>(load_ordinal));
    if (attempt > 0)
      load_rng = load_rng.fork("retry").fork(static_cast<std::uint64_t>(attempt));

    // Fault decisions come from their own stream, keyed by everything
    // that identifies this attempt and nothing that depends on thread
    // scheduling — the --jobs determinism guarantee holds under faults.
    std::optional<net::FaultInjector> injector;
    if (faulty) {
      injector.emplace(
          config_.fault_profile,
          state.rng.fork("faults")
              .fork(site.domain())
              .fork(page_index)
              .fork(static_cast<std::uint64_t>(load_ordinal))
              .fork(static_cast<std::uint64_t>(attempt)));
      options.faults = &*injector;
    }
    // Chaos strike decisions get their own per-attempt stream, keyed
    // exactly like fault decisions (so --jobs / resume determinism
    // holds), and the defense layer is armed alongside the oracle.
    std::optional<net::ChaosInjector> chaos_injector;
    if (chaotic) {
      chaos_injector.emplace(
          chaos_plan_,
          state.rng.fork("chaos-roll")
              .fork(site.domain())
              .fork(page_index)
              .fork(static_cast<std::uint64_t>(load_ordinal))
              .fork(static_cast<std::uint64_t>(attempt)));
      options.chaos = &*chaos_injector;
      options.breakers = &state.breakers;
      options.hedge_dns = true;
      options.deadline_budget = true;
    }

    const browser::LoadResult result = state.loader.load(page, load_rng, options);
    fetch.outcome.attempts = attempt + 1;
    fetch.outcome.status = result.status;
    fetch.outcome.failure = result.root_failure;
    fetch.outcome.failed_objects = result.failed_objects;
    fetch.outcome.breaker_denials = result.breaker_denials;

    if (state.metrics != nullptr) {
      obs::MetricsRegistry& reg = *state.metrics;
      ++reg.counter("loader.loads");
      reg.counter("loader.objects") += result.har.entries.size();
      reg.counter("loader.bytes") +=
          static_cast<std::uint64_t>(std::llround(result.har.total_bytes()));
      reg.counter("loader.handshakes") +=
          static_cast<std::uint64_t>(result.handshakes);
      reg.counter("loader.x_cache_hits") +=
          static_cast<std::uint64_t>(result.x_cache_hits);
      reg.counter("loader.x_cache_misses") +=
          static_cast<std::uint64_t>(result.x_cache_misses);
      reg.counter("loader.object_retries") +=
          static_cast<std::uint64_t>(result.object_retries);
      reg.counter("loader.failed_objects") +=
          static_cast<std::uint64_t>(result.failed_objects);
      if (result.watchdog_abort) ++reg.counter("loader.watchdog_aborts");
      if (injector) {
        const auto& injected = injector->injected();
        for (int kind = 1; kind < net::kFaultKindCount; ++kind)
          if (injected[static_cast<std::size_t>(kind)] > 0)
            reg.counter("faults.injected." +
                        std::string(net::to_string(
                            static_cast<net::FaultKind>(kind)))) +=
                injected[static_cast<std::size_t>(kind)];
      }
      // Chaos-off runs must leave the metrics artifact untouched, so
      // every defense counter appears only when it actually fired.
      if (chaos_injector) {
        const auto& injected = chaos_injector->injected();
        for (int kind = 1; kind < net::kFaultKindCount; ++kind)
          if (injected[static_cast<std::size_t>(kind)] > 0)
            reg.counter("chaos.injected." +
                        std::string(net::to_string(
                            static_cast<net::FaultKind>(kind)))) +=
                injected[static_cast<std::size_t>(kind)];
      }
      if (result.breaker_denials > 0)
        reg.counter("breaker.denials") +=
            static_cast<std::uint64_t>(result.breaker_denials);
      if (result.dns_hedges > 0)
        reg.counter("dns.hedge.fired") +=
            static_cast<std::uint64_t>(result.dns_hedges);
      if (result.dns_hedge_wins > 0)
        reg.counter("dns.hedge.won") +=
            static_cast<std::uint64_t>(result.dns_hedge_wins);
    }
    if (state.tracer != nullptr) {
      obs::TraceSpan span;
      span.name = site.domain();
      span.cat = "load";
      span.ts_us = obs::to_trace_us(options.start_time_s);
      span.dur_us = obs::to_trace_us(result.on_load_ms / 1000.0);
      span.tid = static_cast<std::uint32_t>(state.shard_id) + 1;
      span.args.emplace_back("page", std::to_string(page_index));
      span.args.emplace_back("ordinal", std::to_string(load_ordinal));
      span.args.emplace_back("attempt", std::to_string(attempt));
      span.args.emplace_back("status",
                             std::string(browser::to_string(result.status)));
      state.tracer->record(std::move(span));
    }

    if (result.status != browser::LoadStatus::kFailed) {
      fetch.metrics = extract_metrics(state, page, result);
      fetch.usable = true;
      return fetch;
    }
    // Failed load: back off on the shard clock before re-fetching.
    // exp2 on a clamped double replaces the old `1 << attempt` (UB for
    // attempt >= 31 once --max-retries is cranked up); the 32x ceiling
    // bounds the pause either way.
    if (attempt + 1 < max_attempts)
      state.clock_s += config_.retry_backoff_s *
                       std::min(kMaxRetryBackoffScale,
                                std::exp2(static_cast<double>(
                                    std::min(attempt, 62))));
  }
  return fetch;  // permanently failed (usable == false)
}

PageMetrics extract_page_metrics(const web::WebPage& page,
                                 const browser::LoadResult& result,
                                 DetectionScratch& scratch,
                                 const browser::AdBlocker& adblock,
                                 const browser::HbDetector& hb,
                                 const cdn::CdnDetector& detector,
                                 std::size_t wait_sample_cap,
                                 obs::MetricsRegistry* metrics) {
  const browser::HarLog& har = result.har;
  DetectionScratch& d = scratch;

  PageMetrics m;
  m.bytes = har.total_bytes();
  m.objects = static_cast<double>(har.object_count());
  m.plt_ms = result.plt_ms;
  m.on_load_ms = result.on_load_ms;
  m.speed_index_ms = result.speed_index_ms;
  m.unique_domains = static_cast<double>(har.unique_domains());
  m.handshakes = result.handshakes;
  m.handshake_time_ms = result.handshake_time_ms;
  m.dns_lookups = result.dns_lookups;
  m.dns_time_ms = result.dns_time_ms;
  m.x_cache_hits = result.x_cache_hits;
  m.x_cache_misses = result.x_cache_misses;
  m.is_http = page.url.scheme == util::Scheme::kHttp;
  m.mixed_content = har.has_mixed_content();
  m.hints_total = page.hints.total();  // DOM inspection (§5.5)

  // The page's own registrable domain, computed once per load instead
  // of once per entry (is_third_party recomputes both sides).
  const std::string page_rd = util::registrable_domain(page.url.host);
  d.hb_hosts.clear();
  d.hb_urls.clear();
  std::size_t tracking_requests = 0;

  double cacheable_bytes = 0.0;
  double cdn_bytes = 0.0;
  for (const auto& entry : har.entries) {
    if (entry.cacheable)
      cacheable_bytes += entry.body_size;
    else
      ++m.noncacheable_objects;
    // Content mix from HAR MIME types (§5.2).
    const auto category = web::categorize_mime_type(entry.mime_type);
    m.mix_fractions[static_cast<std::size_t>(category)] += entry.body_size;
    // CDN classification via cdnfinder heuristics (§5.1), memoized on
    // the full (host, CNAME, headers) tuple classify() reads.
    d.key_buf.assign(entry.host);
    d.key_buf.push_back('\n');
    if (entry.dns_cname) {
      d.key_buf.push_back('@');
      d.key_buf.append(*entry.dns_cname);
    }
    for (const auto& header : entry.response_headers) {
      d.key_buf.push_back('\n');
      d.key_buf.append(header);
    }
    const std::uint32_t fetch_id = d.fetch_keys.intern(d.key_buf);
    if (fetch_id == d.via_cdn.size()) {
      const cdn::ObservedFetch fetch{entry.host, entry.dns_cname,
                                     entry.response_headers};
      d.via_cdn.push_back(detector.classify(fetch).via_cdn ? 1 : 0);
    }
    if (d.via_cdn[fetch_id] != 0) cdn_bytes += entry.body_size;
    // Third parties by registrable domain (§6.2), host memoized.
    const std::uint32_t host_id = d.hosts.intern(entry.host);
    if (host_id == d.registrable.size())
      d.registrable.push_back(util::registrable_domain(entry.host));
    if (d.registrable[host_id] != page_rd)
      m.third_parties.insert(d.registrable[host_id]);
    // Tracker / header-bidding pattern scans (§6.3), URL memoized.
    const std::uint32_t url_id = d.urls.intern(entry.url);
    if (url_id == d.url_flags.size()) {
      std::uint8_t flags = 0;
      if (adblock.matches(entry.url)) flags |= 1;
      const auto [exchange, creative] = hb.classify_url(entry.url);
      if (exchange) flags |= 2;
      if (creative) flags |= 4;
      d.url_flags.push_back(flags);
    }
    const std::uint8_t flags = d.url_flags[url_id];
    if ((flags & 1) != 0) ++tracking_requests;
    if ((flags & 2) != 0) d.hb_hosts.push_back(entry.host);
    if ((flags & 4) != 0) d.hb_urls.push_back(entry.url);
    // Per-object wait phase (§5.6, Fig. 7); memory-capped, see
    // PageMetrics::wait_samples_ms.
    if (m.wait_samples_ms.size() < wait_sample_cap)
      m.wait_samples_ms.push_back(entry.timings.wait);
  }
  if (metrics != nullptr && har.entries.size() > m.wait_samples_ms.size())
    metrics->counter("loader.wait_samples_dropped") +=
        har.entries.size() - m.wait_samples_ms.size();
  if (m.bytes > 0.0) {
    m.cacheable_bytes_fraction = cacheable_bytes / m.bytes;
    m.cdn_bytes_fraction = cdn_bytes / m.bytes;
    for (auto& fraction : m.mix_fractions) fraction /= m.bytes;
  }

  // Dependency depths via DevTools-style initiator tracking (§5.4).
  for (const auto& object : page.objects) {
    const auto depth =
        static_cast<std::size_t>(std::min(object.depth, 5));
    ++m.depth_counts[depth];
  }

  // §6.3 aggregation, replicating AdBlocker::count_blocked and
  // HbDetector::analyze over the memoized per-URL verdicts: blocked
  // entries count one each; header bidding needs >= 2 distinct exchange
  // hosts; ad slots are distinct creative URLs.
  m.tracking_requests = static_cast<double>(tracking_requests);
  std::sort(d.hb_hosts.begin(), d.hb_hosts.end());
  d.hb_hosts.erase(std::unique(d.hb_hosts.begin(), d.hb_hosts.end()),
                   d.hb_hosts.end());
  std::sort(d.hb_urls.begin(), d.hb_urls.end());
  d.hb_urls.erase(std::unique(d.hb_urls.begin(), d.hb_urls.end()),
                  d.hb_urls.end());
  m.header_bidding = d.hb_hosts.size() >= 2;
  m.hb_ad_slots = static_cast<double>(d.hb_urls.size());
  return m;
}

PageMetrics MeasurementCampaign::extract_metrics(
    ShardState& state, const web::WebPage& page,
    const browser::LoadResult& result) const {
  return extract_page_metrics(page, result, state.detect, adblock_, hb_,
                              detector_, config_.wait_sample_cap,
                              state.metrics.get());
}

PageMetrics MeasurementCampaign::median_metrics(
    const std::vector<PageMetrics>& loads) {
  if (loads.empty())
    throw std::invalid_argument("median_metrics: no loads");
  if (loads.size() == 1) return loads.front();

  PageMetrics out = loads.front();  // page identity from load 1
  // Bools are per-load detections, not page identity: header bidding is
  // a stochastic auction and HTTPS redirects can differ between loads,
  // so the median observation takes a strict majority vote; mixed
  // content is sticky — one tainted load flags the page (§6.1).
  std::size_t http_votes = 0;
  std::size_t hb_votes = 0;
  bool any_mixed = false;
  for (const auto& load : loads) {
    http_votes += load.is_http ? 1u : 0u;
    hb_votes += load.header_bidding ? 1u : 0u;
    any_mixed = any_mixed || load.mixed_content;
  }
  out.is_http = 2 * http_votes > loads.size();
  out.header_bidding = 2 * hb_votes > loads.size();
  out.mixed_content = any_mixed;

  // One scratch buffer for every field: gather, sort in place, read the
  // type-7 median (util::median on a copy computes the same value).
  std::vector<double> scratch;
  scratch.reserve(loads.size());
  const auto median_field = [&](double PageMetrics::* field) {
    scratch.clear();
    for (const auto& load : loads) scratch.push_back(load.*field);
    out.*field = util::median_inplace(scratch);
  };
  median_field(&PageMetrics::bytes);
  median_field(&PageMetrics::objects);
  median_field(&PageMetrics::plt_ms);
  median_field(&PageMetrics::on_load_ms);
  median_field(&PageMetrics::speed_index_ms);
  median_field(&PageMetrics::noncacheable_objects);
  median_field(&PageMetrics::cacheable_bytes_fraction);
  median_field(&PageMetrics::cdn_bytes_fraction);
  median_field(&PageMetrics::x_cache_hits);
  median_field(&PageMetrics::x_cache_misses);
  median_field(&PageMetrics::unique_domains);
  median_field(&PageMetrics::hints_total);
  median_field(&PageMetrics::handshakes);
  median_field(&PageMetrics::handshake_time_ms);
  median_field(&PageMetrics::dns_lookups);
  median_field(&PageMetrics::dns_time_ms);
  median_field(&PageMetrics::tracking_requests);
  median_field(&PageMetrics::hb_ad_slots);
  for (std::size_t i = 0; i < out.mix_fractions.size(); ++i) {
    scratch.clear();
    for (const auto& load : loads) scratch.push_back(load.mix_fractions[i]);
    out.mix_fractions[i] = util::median_inplace(scratch);
  }
  for (std::size_t i = 0; i < out.depth_counts.size(); ++i) {
    scratch.clear();
    for (const auto& load : loads) scratch.push_back(load.depth_counts[i]);
    out.depth_counts[i] = util::median_inplace(scratch);
  }
  out.third_parties.clear();
  out.wait_samples_ms.clear();
  for (const auto& load : loads) {
    out.third_parties.insert(load.third_parties.begin(),
                             load.third_parties.end());
    out.wait_samples_ms.insert(out.wait_samples_ms.end(),
                               load.wait_samples_ms.begin(),
                               load.wait_samples_ms.end());
  }
  return out;
}

void MeasurementCampaign::run_shard(ShardState& state, const HisparList& list,
                                    const std::vector<std::size_t>& positions,
                                    std::vector<SiteObservation>& observations) {
  std::vector<std::vector<PageMetrics>> landing_loads(positions.size());
  // Per-site virtual-clock activity window [first fetch start, clock
  // after last fetch] for the "site" trace spans.
  std::vector<std::pair<double, double>> windows(
      positions.size(), {-1.0, 0.0});
  const auto note_window = [&](std::size_t i, double start) {
    if (windows[i].first < 0.0) windows[i].first = start;
    windows[i].second = state.clock_s;
  };
  std::uint64_t fetches = 0;

  // Landing pages: `landing_loads` interleaved rounds over the shard's
  // sites (the paper shuffles and iterates the landing set 10 times,
  // §3.1; here each shard is one vantage point running that protocol).
  for (int round = 0; round < config_.landing_loads; ++round) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const UrlSet& set = list.sets[positions[i]];
      const web::WebSite& site = require_site(set.domain);
      const double fetch_start_s = state.clock_s;
      PageFetch fetch = fetch_page(state, site, 0, round);
      note_window(i, fetch_start_s);
      ++fetches;
      SiteObservation& observation = observations[positions[i]];
      observation.total_retries += fetch.outcome.attempts - 1;
      observation.outcomes.push_back(fetch.outcome);
      if (fetch.usable) landing_loads[i].push_back(std::move(fetch.metrics));
    }
  }

  // Internal pages: position-interleaved single fetches. A fetch that
  // fails even after retries drops that internal page from the
  // observation — the paper discarded failed loads the same way — but
  // the outcome still records it.
  std::size_t max_internal = 0;
  for (std::size_t position : positions)
    max_internal =
        std::max(max_internal, list.sets[position].page_indices.size());
  for (std::size_t page_pos = 1; page_pos < max_internal; ++page_pos) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const UrlSet& set = list.sets[positions[i]];
      if (page_pos >= set.page_indices.size()) continue;
      const web::WebSite& site = require_site(set.domain);
      const double fetch_start_s = state.clock_s;
      PageFetch fetch =
          fetch_page(state, site, set.page_indices[page_pos], 0);
      note_window(i, fetch_start_s);
      ++fetches;
      SiteObservation& observation = observations[positions[i]];
      observation.total_retries += fetch.outcome.attempts - 1;
      observation.outcomes.push_back(fetch.outcome);
      if (fetch.usable)
        observation.internals.push_back(std::move(fetch.metrics));
    }
  }

  for (std::size_t i = 0; i < positions.size(); ++i) {
    const UrlSet& set = list.sets[positions[i]];
    SiteObservation& observation = observations[positions[i]];
    observation.domain = set.domain;
    observation.bootstrap_rank = set.bootstrap_rank;
    observation.category = require_site(set.domain).profile().category;
    if (landing_loads[i].empty()) {
      // Every landing load failed: quarantine the site (the paper drops
      // sites that never complete); the default-constructed landing
      // metrics are never fed to analyses.
      observation.quarantined = true;
    } else {
      observation.landing = median_metrics(std::move(landing_loads[i]));
    }
  }

  if (state.tracer != nullptr) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (windows[i].first < 0.0) continue;  // site never fetched
      obs::TraceSpan span;
      span.name = list.sets[positions[i]].domain;
      span.cat = "site";
      span.ts_us = obs::to_trace_us(windows[i].first);
      span.dur_us = obs::to_trace_us(windows[i].second - windows[i].first);
      span.tid = static_cast<std::uint32_t>(state.shard_id) + 1;
      state.tracer->record(std::move(span));
    }
    obs::TraceSpan span;
    span.name = "shard " + std::to_string(state.shard_id);
    span.cat = "shard";
    span.ts_us = 0;
    span.dur_us = obs::to_trace_us(state.clock_s);
    span.tid = static_cast<std::uint32_t>(state.shard_id) + 1;
    state.tracer->record(std::move(span));
  }
  if (state.metrics != nullptr) {
    // Shard-scoped values live in gauges; the campaign merge prefixes
    // them "shard.<id>." so they stay distinguishable.
    state.metrics->gauge("clock_end_s") = state.clock_s;
    state.metrics->gauge("sites") = static_cast<double>(positions.size());
    state.metrics->gauge("fetches") = static_cast<double>(fetches);
    state.metrics->counter("cdn.lru_evictions") = state.cdn.lru_evictions();
    // Breaker end state, only under chaos (the set stays empty
    // otherwise, keeping chaos-off metrics artifacts byte-identical).
    if (!state.breakers.empty()) {
      state.metrics->gauge("breaker.scopes") =
          static_cast<double>(state.breakers.records().size());
      if (state.breakers.total_times_opened() > 0)
        state.metrics->counter("breaker.opened") =
            state.breakers.total_times_opened();
    }
  }
}

namespace {

// Canonical serialization of the per-vantage substrate knobs. Appended
// to the digest only when it differs from the defaults' key, so every
// digest computed before the knobs existed — including on-disk
// checkpoints and the pinned goldens — is reproduced exactly.
std::string substrate_key(const CampaignConfig& config) {
  std::ostringstream os;
  os.precision(17);
  for (int from = 0; from < net::kRegionCount; ++from)
    for (int to = 0; to < net::kRegionCount; ++to)
      os << config.latency.rtt_ms[from][to] << ',';
  os << config.latency.jitter_sigma << '|' << config.latency.access_ms << '|'
     << config.latency.bandwidth_bytes_per_ms << '|' << config.resolver.name
     << '|' << config.resolver.cache_shards << '|'
     << config.resolver.client_rtt_ms << '|'
     << static_cast<int>(config.resolver.resolver_region) << '|'
     << config.resolver.processing_ms << '|' << config.use_doh << '|'
     << config.doh.connection_setup_ms << '|'
     << config.doh.per_query_overhead_ms << '|'
     << (config.cdn_edge_pin ? static_cast<int>(*config.cdn_edge_pin) : -1);
  return os.str();
}

}  // namespace

std::uint64_t campaign_config_digest(const CampaignConfig& config,
                                     const HisparList& list) {
  std::ostringstream os;
  os.precision(17);
  const auto& lo = config.load_options;
  os << "v1|" << config.seed << '|' << config.shards << '|'
     << config.landing_loads << '|' << config.inter_fetch_gap_s << '|'
     << static_cast<int>(config.vantage) << '|' << config.wait_sample_cap
     << '|' << lo.use_resource_hints << lo.model_cdn_warmth
     << lo.reuse_connections << '|'
     << (lo.transport_override ? static_cast<int>(*lo.transport_override) : -1)
     << '|' << config.fault_profile.str() << '|' << config.max_page_retries
     << '|' << config.retry_backoff_s << '|' << config.page_timeout_s
     << '|' << util::fnv1a(to_csv(list));
  const std::string substrate = substrate_key(config);
  if (substrate != substrate_key(CampaignConfig{}))
    os << "|sub|" << substrate;
  // Chaos joins the digest only when a schedule is set, so every digest
  // computed before the chaos engine existed — including on-disk
  // checkpoints and the pinned goldens — is reproduced exactly.
  if (config.chaos.enabled()) os << "|chaos|" << config.chaos.str();
  return util::fnv1a(os.str());
}

void validate_shard_count(const std::string& context, std::size_t shards,
                          std::size_t sites) {
  if (shards > sites)
    throw std::invalid_argument(
        context + ": --shards (" + std::to_string(shards) +
        ") exceeds the site count (" + std::to_string(sites) +
        "); shards beyond the site count would be empty");
}

std::uint64_t MeasurementCampaign::checkpoint_digest(
    const HisparList& list) const {
  return campaign_config_digest(config_, list);
}

std::vector<SiteObservation> MeasurementCampaign::run(const HisparList& list) {
  const std::size_t shard_count = std::max<std::size_t>(1, config_.shards);
  const auto shards = shard_indices(list, shard_count);
  std::vector<SiteObservation> observations(list.sets.size());
  // Per-shard telemetry lands in disjoint slots (no synchronization
  // needed beyond the for_each_shard joins) and is merged in shard-id
  // order below, so the merged artifacts are --jobs independent.
  std::vector<obs::ShardTelemetry> shard_telemetry(shard_count);
  // Final breaker states per shard, captured under a chaos schedule for
  // checkpoint blocks (informational — a shard either completed or
  // re-runs from scratch — but re-emitted verbatim on resume so the
  // rewritten file stays byte-identical to an uninterrupted one).
  std::vector<std::vector<net::BreakerSet::Record>> shard_breakers(
      shard_count);
  telemetry_ = obs::RunTelemetry{};
  telemetry_.enabled = config_.observability.enabled;

  // Checkpointing: a shard is the unit of isolated simulation state, so
  // it is also the unit of resume — a shard either completed (its
  // observations are on disk and are spliced back in) or re-runs from
  // scratch, which makes a resumed campaign bit-identical to an
  // uninterrupted one.
  std::vector<char> shard_done(shard_count, 0);
  std::ofstream checkpoint_out;
  std::mutex checkpoint_mutex;
  if (!config_.checkpoint_path.empty()) {
    const std::uint64_t digest = checkpoint_digest(list);
    std::ifstream existing(config_.checkpoint_path);
    if (existing) {
      CampaignCheckpoint checkpoint = read_checkpoint(existing);
      if (checkpoint.config_digest != digest)
        throw std::runtime_error(
            "campaign: checkpoint was written by a different campaign "
            "(seed/shards/profile/list changed)");
      for (std::size_t shard : checkpoint.completed_shards)
        if (shard < shard_count) shard_done[shard] = 1;
      for (const auto& [position, observation] : checkpoint.observations)
        if (position < observations.size())
          observations[position] = observation;
      // Completed shards' telemetry was checkpointed too; restoring it
      // keeps the merged telemetry artifacts bit-identical across
      // kill + resume.
      for (auto& [shard, telemetry] : checkpoint.telemetry)
        if (shard < shard_count)
          shard_telemetry[shard] = std::move(telemetry);
      for (auto& [shard, records] : checkpoint.breakers)
        if (shard < shard_count) shard_breakers[shard] = std::move(records);
      existing.close();
    }
    // (Re)write the file from the parsed state: a resume drops the torn
    // tail a kill may have left, so the file stays cleanly resumable no
    // matter how many times the campaign is interrupted. Written to a
    // temp file and renamed over the original — truncating in place
    // had a kill window that lost already-durable shard blocks.
    std::ostringstream rewritten;
    write_checkpoint_header(rewritten, digest);
    for (std::size_t shard = 0; shard < shard_count; ++shard)
      if (shard_done[shard])
        append_checkpoint_shard(rewritten, shard, shards[shard],
                                observations,
                                shard_telemetry[shard].empty()
                                    ? nullptr
                                    : &shard_telemetry[shard],
                                shard_breakers[shard].empty()
                                    ? nullptr
                                    : &shard_breakers[shard]);
    replace_file_atomically(config_.checkpoint_path, rewritten.str());
    checkpoint_out.open(config_.checkpoint_path, std::ios::app);
    if (!checkpoint_out)
      throw std::runtime_error("campaign: cannot open checkpoint " +
                               config_.checkpoint_path);
  }

  // Each worker builds its shard's state on its own thread and writes
  // only to that shard's list positions, so no synchronization is needed
  // beyond the joins in for_each_shard (and the checkpoint file mutex).
  for_each_shard(shard_count, config_.jobs, [&](std::size_t shard) {
    if (shard_done[shard]) return;
    ShardRun result =
        run_one_shard(shard, list, shards[shard], observations);
    shard_telemetry[shard] = std::move(result.telemetry);
    shard_breakers[shard] = std::move(result.breakers);
    if (checkpoint_out.is_open()) {
      const std::lock_guard<std::mutex> lock(checkpoint_mutex);
      append_checkpoint_shard(checkpoint_out, shard, shards[shard],
                              observations,
                              shard_telemetry[shard].empty()
                                  ? nullptr
                                  : &shard_telemetry[shard],
                              shard_breakers[shard].empty()
                                  ? nullptr
                                  : &shard_breakers[shard]);
      checkpoint_out.flush();
    }
  });

  if (config_.observability.enabled)
    merge_campaign_telemetry(telemetry_, shard_telemetry);
  return observations;
}

MeasurementCampaign::ShardRun MeasurementCampaign::run_one_shard(
    std::size_t shard, const HisparList& list,
    const std::vector<std::size_t>& positions,
    std::vector<SiteObservation>& observations) {
  ShardRun result;
  if (positions.empty()) return result;
  ShardState state(*web_, config_, shard);
  run_shard(state, list, positions, observations);
  if (config_.observability.enabled) result.telemetry = state.take_telemetry();
  if (!state.breakers.empty()) result.breakers = state.breakers.records();
  return result;
}

void merge_campaign_telemetry(obs::RunTelemetry& telemetry,
                              const std::vector<obs::ShardTelemetry>& shards) {
  // Merge in shard-id order: counters/histograms sum, gauges become
  // "shard.<id>.<name>", spans concatenate behind one campaign-level
  // span whose duration is the slowest shard's virtual clock.
  double campaign_end_s = 0.0;
  for (std::size_t shard = 0; shard < shards.size(); ++shard) {
    const obs::ShardTelemetry& shard_telemetry = shards[shard];
    if (shard_telemetry.empty()) continue;
    telemetry.metrics.merge_from(shard_telemetry.metrics,
                                 "shard." + std::to_string(shard) + ".");
    telemetry.spans.insert(telemetry.spans.end(),
                           shard_telemetry.spans.begin(),
                           shard_telemetry.spans.end());
    telemetry.spans_dropped += shard_telemetry.spans_dropped;
    campaign_end_s = std::max(
        campaign_end_s, shard_telemetry.metrics.gauge_or("clock_end_s"));
  }
  obs::TraceSpan campaign_span;
  campaign_span.name = "campaign";
  campaign_span.cat = "campaign";
  campaign_span.ts_us = 0;
  campaign_span.dur_us = obs::to_trace_us(campaign_end_s);
  campaign_span.tid = 0;
  telemetry.spans.insert(telemetry.spans.begin(), std::move(campaign_span));
  telemetry.metrics.counter("trace.spans_dropped") = telemetry.spans_dropped;
}

SiteObservation MeasurementCampaign::measure_site(
    const web::WebSite& site, const std::vector<std::size_t>& internal_pages) {
  SiteObservation observation;
  observation.domain = site.domain();
  observation.bootstrap_rank = site.profile().rank;
  observation.category = site.profile().category;

  std::vector<PageMetrics> loads;
  loads.reserve(static_cast<std::size_t>(config_.landing_loads));
  for (int round = 0; round < config_.landing_loads; ++round) {
    PageFetch fetch = fetch_page(local_, site, 0, round);
    observation.total_retries += fetch.outcome.attempts - 1;
    observation.outcomes.push_back(fetch.outcome);
    if (fetch.usable) loads.push_back(std::move(fetch.metrics));
  }
  if (loads.empty())
    observation.quarantined = true;
  else
    observation.landing = median_metrics(std::move(loads));

  observation.internals.reserve(internal_pages.size());
  for (std::size_t page : internal_pages) {
    PageFetch fetch = fetch_page(local_, site, page, 0);
    observation.total_retries += fetch.outcome.attempts - 1;
    observation.outcomes.push_back(fetch.outcome);
    if (fetch.usable)
      observation.internals.push_back(std::move(fetch.metrics));
  }
  return observation;
}

obs::RunReport build_run_report(const std::vector<SiteObservation>& sites,
                                const obs::RunTelemetry& telemetry) {
  obs::RunReport report;
  const CampaignSummary summary = summarize_campaign(sites);
  report.sites_total = sites.size();
  report.sites_ok = summary.sites_ok;
  report.sites_degraded = summary.sites_degraded;
  report.sites_quarantined = summary.sites_quarantined;
  report.failed_fetches = summary.failed_fetches;
  report.degraded_fetches = summary.degraded_fetches;
  report.total_retries = summary.total_retries;
  for (const auto& site : sites) {
    report.page_fetches += site.outcomes.size();
    report.internal_pages_measured += site.internals.size();
  }

  // Failures by root cause, in FaultKind order (kNone excluded); the
  // injected column comes from telemetry and stays 0 without it.
  std::array<std::uint64_t, net::kFaultKindCount> failures{};
  for (const auto& site : sites)
    for (const auto& outcome : site.outcomes)
      if (outcome.status == browser::LoadStatus::kFailed)
        ++failures[static_cast<std::size_t>(outcome.failure)];
  // Quarantine root causes: a site is quarantined when every landing
  // load failed, so charge it to the modal failure kind among its
  // landing outcomes (ties to the lower kind — a fixed order keeps the
  // report deterministic).
  std::array<std::uint64_t, net::kFaultKindCount> quarantined_by{};
  for (const auto& site : sites) {
    if (!site.quarantined) continue;
    std::array<std::uint64_t, net::kFaultKindCount> counts{};
    for (const auto& outcome : site.outcomes)
      if (outcome.page_index == 0 &&
          outcome.status == browser::LoadStatus::kFailed)
        ++counts[static_cast<std::size_t>(outcome.failure)];
    std::size_t modal = 0;
    for (std::size_t kind = 1; kind < net::kFaultKindCount; ++kind)
      if (counts[kind] > counts[modal]) modal = kind;
    if (counts[modal] > 0) ++quarantined_by[modal];
  }
  for (int kind = 1; kind < net::kFaultKindCount; ++kind) {
    obs::RunReport::FaultLine line;
    line.kind = std::string(net::to_string(static_cast<net::FaultKind>(kind)));
    line.failed_fetches = failures[static_cast<std::size_t>(kind)];
    line.injected =
        telemetry.metrics.counter_or("faults.injected." + line.kind);
    line.sites_quarantined = quarantined_by[static_cast<std::size_t>(kind)];
    report.faults.push_back(std::move(line));
  }

  report.telemetry = telemetry.enabled;
  if (telemetry.enabled) {
    const obs::MetricsRegistry& m = telemetry.metrics;
    report.dns_queries = m.counter_or("dns.queries");
    report.dns_cache_hits = m.counter_or("dns.cache_hits");
    report.cdn_requests = m.counter_or("cdn.requests");
    report.cdn_edge_hits = m.counter_or("cdn.edge_hits");
    report.cdn_edge_lru_hits = m.counter_or("cdn.edge_lru_hits");
    report.cdn_parent_hits = m.counter_or("cdn.parent_hits");
    report.cdn_origin_fetches = m.counter_or("cdn.origin_fetches");
    report.cdn_lru_evictions = m.counter_or("cdn.lru_evictions");
    report.wait_samples_dropped = m.counter_or("loader.wait_samples_dropped");
    report.trace_spans = telemetry.spans.size();
    report.trace_spans_dropped = telemetry.spans_dropped;

    // One line per shard that ran, reassembled from the prefixed gauges.
    for (const auto& [name, value] : m.gauges()) {
      if (name.rfind("shard.", 0) != 0) continue;
      const auto dot = name.find('.', 6);
      if (dot == std::string::npos || name.substr(dot + 1) != "clock_end_s")
        continue;
      const std::string id = name.substr(6, dot - 6);
      obs::RunReport::ShardLine line;
      line.shard = std::strtoull(id.c_str(), nullptr, 10);
      line.clock_end_s = value;
      line.sites = static_cast<std::uint64_t>(
          std::llround(m.gauge_or("shard." + id + ".sites")));
      line.fetches = static_cast<std::uint64_t>(
          std::llround(m.gauge_or("shard." + id + ".fetches")));
      report.shards.push_back(std::move(line));
    }
    std::sort(report.shards.begin(), report.shards.end(),
              [](const obs::RunReport::ShardLine& a,
                 const obs::RunReport::ShardLine& b) {
                return a.shard < b.shard;
              });
  }
  return report;
}

}  // namespace hispar::core
