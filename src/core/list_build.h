// Sharded, fault-aware, resumable Hispar list construction (§3, §7).
//
// The paper's list is not a one-shot artifact: it is *refreshed weekly*
// against a metered search API, which makes list construction a
// campaign in its own right — long-running, billable, and exposed to
// API failures. ListBuildCampaign brings the builder up to the same
// grade as MeasurementCampaign: the bootstrap scan is sharded across
// workers via core/parallel, `site:` query attempts pass through a
// search-API fault oracle (net::SearchFaultInjector) with per-query
// retry/backoff and site quarantine, completed weeks checkpoint through
// core/serialization, and per-shard metrics/traces merge into the usual
// deterministic telemetry artifacts.
//
// Determinism contract (same as the measurement campaign):
//  * every output byte — list CSVs, churn CSV, cost ledger, metrics,
//    trace, report, checkpoint — is identical for any --jobs value and
//    across kill + resume;
//  * with a zero-rate fault profile, the produced list, examined-site
//    count and billed-query count are exactly those of the serial
//    HisparBuilder (tests/test_list_build.cpp pins this).
//
// How the scan stays serial-equivalent under sharding: the serial
// builder walks bootstrap ranks in order and stops at the rank that
// accepts the target-th site. Per-rank decisions are pure — a domain's
// query results depend only on (domain, week, engine config), never on
// other domains — so the campaign examines ranks in fixed-size *waves*
// (wave size is config-derived, never --jobs derived), partitions each
// wave across shards by domain hash, then merges the candidates back in
// rank order and cuts the merged sequence at the serial stopping rank.
// Ranks examined past the cut are wave overshoot: their queries are
// real spend and are accounted separately as `speculative_queries`, but
// they never influence the list.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/hispar.h"
#include "net/faults.h"
#include "net/outage.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "search/engine.h"
#include "toplist/providers.h"
#include "web/generator.h"

namespace hispar::core {

// How examining one bootstrap rank ended.
enum class CandidateStatus : std::uint8_t {
  kAccepted = 0,     // enough internal results; joins the list
  kDropped,          // below min_internal_results (§3: mostly non-English)
  kMissing,          // bootstrap names a domain the web has no site for
  kQuarantined,      // every query attempt failed; excluded this week
};
inline constexpr int kCandidateStatusCount = 4;

std::string_view to_string(CandidateStatus status);

// One examined bootstrap rank: the shard's verdict plus what it cost.
struct SiteCandidate {
  std::size_t rank = 0;  // 1-based bootstrap rank
  std::string domain;
  CandidateStatus status = CandidateStatus::kDropped;
  UrlSet set;  // filled when accepted
  std::uint64_t queries_billed = 0;  // across all attempts
  int retries = 0;                   // attempts consumed beyond the first
  net::SearchFaultKind failure =
      net::SearchFaultKind::kNone;   // root cause when quarantined
};

// One week's build accounting. The sites_*/queries_billed/retries
// numbers cover the consumed bootstrap prefix only (ranks up to the
// serial stopping point), so on a fault-free run they equal the serial
// builder's BuildStats; wave overshoot shows up only in
// speculative_queries.
struct WeekBuildStats {
  std::uint64_t week = 0;
  std::size_t sites_examined = 0;
  std::size_t sites_accepted = 0;
  std::size_t sites_dropped = 0;
  std::size_t sites_missing = 0;
  std::size_t sites_quarantined = 0;
  std::uint64_t queries_billed = 0;
  std::uint64_t speculative_queries = 0;  // overshoot past the cut
  std::uint64_t retries = 0;
  // Quarantines by root cause, indexed by SearchFaultKind (slot 0
  // unused). Kept in the stats (not just telemetry) so resumed weeks
  // can rebuild the report without re-examining sites.
  std::array<std::uint64_t, net::kSearchFaultKindCount> quarantined_by{};

  bool operator==(const WeekBuildStats&) const = default;
};

struct ListBuildConfig {
  HisparConfig list;
  // Provider/pagination for the query engine; the index crawl budget is
  // taken from list.index_crawl_budget (as HisparBuilder does).
  search::SearchEngineConfig engine;
  std::uint64_t start_week = 0;
  std::uint64_t weeks = 1;  // refresh loop length
  std::uint64_t seed = 20200312;  // fault-stream seed (H1K bootstrap date)
  // Worker threads (0 = one per hardware thread). Never affects output.
  std::size_t jobs = 1;
  // Shard count: fault streams are keyed by shard id, so (like the
  // measurement campaign's cache-warmth shards) changing `shards`
  // changes fault decisions — changing `jobs` never does.
  std::size_t shards = 8;
  // Ranks examined per scan wave; 0 derives target_sites + headroom.
  // Config-derived only: the wave layout determines which overshoot
  // ranks get examined, so it must never depend on worker count.
  std::size_t wave_size = 0;
  // Search-API fault injection (default: all rates zero — a true no-op;
  // outputs are bit-identical to a build without fault support).
  // Decisions are keyed by (seed, week, shard, domain, attempt).
  net::SearchFaultProfile fault_profile;
  // Correlated-outage chaos schedule (default: empty — a true no-op;
  // the checkpoint digest gains a |chaos| component only when set).
  // Only search-scope rules affect the build — page scopes are inert
  // here. Strike decisions draw from per-attempt streams keyed by
  // (seed, week, shard, domain, attempt); an open per-shard "search"
  // circuit breaker fast-fails attempts without billing a query.
  net::OutageSchedule chaos;
  // Failed query attempts are retried up to this many times with an
  // exponential backoff gap on the shard's virtual clock; a site whose
  // attempts all fail is quarantined for the week.
  int max_query_retries = 2;
  double retry_backoff_s = 30.0;   // base gap; doubles per retry
  double query_latency_s = 0.25;   // virtual seconds per billed result page
  double timeout_latency_s = 10.0; // virtual cost of a timed-out API call
  // When non-empty, run() appends each completed week to this file and,
  // if the file already exists, resumes from it: completed weeks are
  // spliced in and only the rest re-run. The digest guard covers
  // everything that determines a week's bytes — but not `weeks` itself,
  // so a standing refresh loop can extend the same checkpoint file week
  // after week.
  std::string checkpoint_path;
  // Observability; never affects build output and is excluded from the
  // checkpoint digest. Per-shard telemetry is checkpointed per week so
  // resumed builds export bit-identical telemetry.
  obs::ObsOptions observability;
};

struct ListBuildResult {
  std::vector<HisparList> lists;      // one per week, ascending week
  std::vector<WeekBuildStats> weeks;  // parallel to lists
};

// One completed week as checkpointed and resumed (core/serialization).
struct ListBuildWeekRecord {
  std::uint64_t week = 0;
  HisparList list;
  WeekBuildStats stats;
  std::map<std::size_t, obs::ShardTelemetry> telemetry;  // by shard id
};

class ListBuildCampaign {
 public:
  ListBuildCampaign(const web::SyntheticWeb& web,
                    const toplist::TopListFactory& toplists,
                    ListBuildConfig config = {});

  // Build (or resume) the weekly lists. Weeks run in sequence; within a
  // week, scan waves fan out across shards on up to `config.jobs`
  // threads. Output is identical for any `jobs`.
  ListBuildResult run();

  // Fingerprint of everything that determines one week's bytes: seed,
  // list/engine config, shards, wave size, fault profile, retry policy,
  // virtual latencies, and the web universe — but never `jobs`,
  // `weeks`, or the observability options. Guards checkpoint resume.
  std::uint64_t checkpoint_digest() const;

  // Resolved wave size (config.wave_size or the derived default).
  std::size_t wave_size() const;

  // Merged telemetry of the last run(): per-week, per-shard registries
  // folded in (week, shard) order, gauges prefixed
  // "week.<w>.shard.<s>.", spans behind one campaign-level span.
  const obs::RunTelemetry& telemetry() const { return telemetry_; }

 private:
  // Everything one worker mutates while examining its slice of a week's
  // waves: a query engine (billing meter), a virtual clock, telemetry,
  // and the candidates it produced. State persists across the week's
  // waves — pagination warmth is per (shard, week), like the
  // measurement campaign's cache warmth is per shard.
  struct ShardWeekState {
    ShardWeekState(const web::SyntheticWeb& web,
                   const search::SearchEngineConfig& engine_config,
                   const obs::ObsOptions& observability, std::size_t shard_id,
                   double clock_start_s);
    ShardWeekState(const ShardWeekState&) = delete;
    ShardWeekState& operator=(const ShardWeekState&) = delete;

    search::SearchEngine engine;
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<obs::Tracer> tracer;
    std::size_t shard_id = 0;
    double clock_start_s = 0.0;
    double clock_s = 0.0;
    std::vector<SiteCandidate> candidates;
    // Per-shard defenses, touched only under a chaos schedule. Weeks
    // are the checkpoint unit and shard state is rebuilt per week, so
    // breaker state never needs serializing here (unlike the
    // measurement campaign's shard breakers).
    net::BreakerSet breakers;
    // Root cause charged to breaker-denied quarantines: the failure
    // kind that most recently tripped this shard's search breaker.
    net::SearchFaultKind last_failure_kind =
        net::SearchFaultKind::kQueryTimeout;

    obs::ShardTelemetry take_telemetry();
  };

  ListBuildWeekRecord build_week(std::uint64_t week);
  // One bootstrap rank: up to 1 + max_query_retries query attempts with
  // backoff, then the accept/drop/missing/quarantine verdict.
  SiteCandidate examine_rank(ShardWeekState& state,
                             const toplist::TopList& bootstrap,
                             std::uint64_t week, std::size_t rank);

  const web::SyntheticWeb* web_;
  const toplist::TopListFactory* toplists_;
  ListBuildConfig config_;
  net::OutagePlan chaos_plan_;   // materialized once; shared read-only
  obs::RunTelemetry telemetry_;  // merged by the last run()
};

// Guarded churn between two weekly lists: site churn is defined when
// `before` is non-empty; internal-URL churn when the weeks share at
// least one site with internal URLs (the raw §3 metrics throw on those
// degenerate inputs; multi-week artifacts must not).
struct ChurnCell {
  bool has_site_churn = false;
  double site_churn = 0.0;
  bool has_url_churn = false;
  double internal_url_churn = 0.0;
};
ChurnCell churn_between(const HisparList& before, const HisparList& after);

// Churn CSV over consecutive weekly lists (§3):
//   week_from,week_to,site_churn,internal_url_churn
// Undefined cells (empty week, no common sites) print "na".
void write_churn_csv(std::ostream& out, const std::vector<HisparList>& lists);

// Cost ledger CSV (§7): one row per (week, provider) for both providers
// at their published pricing, then total rows. `queries` is the
// consumed (serial-equivalent) count; spend covers everything actually
// issued (consumed + speculative).
void write_cost_ledger_csv(std::ostream& out,
                           const std::vector<WeekBuildStats>& weeks);

// Assembles the structured list-build report from a run's result and
// (possibly disabled/empty) merged telemetry. Lives here rather than in
// obs/ because it reads WeekBuildStats and SearchFaultKind.
obs::ListBuildReport build_listbuild_report(const ListBuildResult& result,
                                            const obs::RunTelemetry& telemetry);

}  // namespace hispar::core
