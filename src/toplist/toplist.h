// Rank-ordered domain lists ("top lists").
//
// §3 discusses the five lists the literature uses (Alexa, Umbrella,
// Majestic, Quantcast, Tranco), why Hispar bootstraps from Alexa, and
// the lists' stability: Alexa Top 5K changes ~10%/day; a 100K-sized
// Alexa subset changes ~41%/week; the sites of H2K inherit ~20%/week.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hispar::toplist {

class TopList {
 public:
  TopList(std::string name, std::vector<std::string> domains);

  const std::string& name() const { return name_; }
  std::size_t size() const { return domains_.size(); }
  const std::vector<std::string>& domains() const { return domains_; }
  const std::string& domain_at(std::size_t rank) const;  // 1-based
  std::optional<std::size_t> rank_of(const std::string& domain) const;
  bool contains(const std::string& domain) const;

  // New list restricted to the first n entries.
  TopList top(std::size_t n) const;

 private:
  std::string name_;
  std::vector<std::string> domains_;
  std::unordered_map<std::string, std::size_t> rank_;
};

// Fraction of `before`'s domains that are absent from `after` — the
// paper's weekly/daily "change" metric (§3: "We estimate the weekly
// churn as the fraction of [entries] present in the list on week i, but
// not on week i+1").
double turnover(const TopList& before, const TopList& after);

// Rank-agreement diagnostics used when comparing providers.
double jaccard_overlap(const TopList& a, const TopList& b);

}  // namespace hispar::toplist
