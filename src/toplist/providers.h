// Top-list providers over the synthetic web.
//
// Each provider observes the sites' true traffic through its own lens:
//  * Alexa/Quantcast: browsing panels — noisy samples of visit rates;
//  * Umbrella: DNS query volume — inflated for domains with many
//    subdomains and short TTLs, so its head is not end-user browsing
//    (§3: "4 of the top 5 entries were Netflix domains");
//  * Majestic: link subnets — a quality measure, very stable;
//  * Tranco: a 30-day average of the others — stable by construction.
//
// Measurement noise follows an AR(1) random walk in log space per
// (provider, domain), so day-over-day churn is smaller than
// week-over-week churn, as the paper observes (~10%/day vs ~41%/week
// for Alexa subsets).
#pragma once

#include <cstdint>

#include "toplist/toplist.h"
#include "web/generator.h"

namespace hispar::toplist {

enum class Provider { kAlexa, kUmbrella, kMajestic, kQuantcast, kTranco };

std::string provider_name(Provider p);

struct ProviderNoise {
  // Stationary sigma of the log-score noise and its daily correlation.
  double sigma = 0.5;
  double daily_rho = 0.97;
};

ProviderNoise default_noise(Provider p);

class TopListFactory {
 public:
  explicit TopListFactory(const web::SyntheticWeb& web,
                          std::uint64_t seed = 1009);

  // The provider's list on the given day (0-based), truncated to `size`.
  TopList list_on_day(Provider p, std::uint64_t day, std::size_t size) const;

  // Convenience: weekly snapshots (day = week * 7). The paper's
  // bootstrap downloads A1M weekly, every Thursday (§3).
  TopList weekly_list(Provider p, std::uint64_t week, std::size_t size) const;

 private:
  double domain_score(Provider p, std::size_t rank,
                      const std::string& domain, std::uint64_t day) const;

  const web::SyntheticWeb* web_;
  std::uint64_t seed_;
};

}  // namespace hispar::toplist
