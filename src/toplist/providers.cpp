#include "toplist/providers.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace hispar::toplist {

std::string provider_name(Provider p) {
  switch (p) {
    case Provider::kAlexa: return "alexa";
    case Provider::kUmbrella: return "umbrella";
    case Provider::kMajestic: return "majestic";
    case Provider::kQuantcast: return "quantcast";
    case Provider::kTranco: return "tranco";
  }
  return "unknown";
}

ProviderNoise default_noise(Provider p) {
  switch (p) {
    case Provider::kAlexa:
      // Panel-based; calibrated so same-size subsets show ~10% daily and
      // ~40% weekly turnover at the 100K-scale analogue (§3).
      return {0.55, 0.90};
    case Provider::kQuantcast:
      return {0.50, 0.92};
    case Provider::kUmbrella:
      return {0.45, 0.93};
    case Provider::kMajestic:
      return {0.15, 0.995};  // link structure barely moves
    case Provider::kTranco:
      return {0.0, 1.0};  // computed, not sampled
  }
  return {0.5, 0.9};
}

TopListFactory::TopListFactory(const web::SyntheticWeb& web,
                               std::uint64_t seed)
    : web_(&web), seed_(seed) {}

double TopListFactory::domain_score(Provider p, std::size_t rank,
                                    const std::string& domain,
                                    std::uint64_t day) const {
  const web::SiteProfile& profile = web_->site_by_rank(rank).profile();

  if (p == Provider::kTranco) {
    // 30-day average over the three component providers (Umbrella,
    // Majestic, Alexa — cf. Pochat et al.).
    double sum = 0.0;
    for (std::uint64_t d = day >= 29 ? day - 29 : 0; d <= day; ++d) {
      sum += domain_score(Provider::kAlexa, rank, domain, d) +
             domain_score(Provider::kUmbrella, rank, domain, d) +
             domain_score(Provider::kMajestic, rank, domain, d);
    }
    return sum;
  }

  double base = profile.site_visit_rate;
  switch (p) {
    case Provider::kUmbrella: {
      // DNS volume: multiplied by the breadth of names under the domain
      // (multi-origin sites and CDN request routing issue more queries).
      const double dns_factor =
          1.0 + 0.15 * profile.internal_domains_median +
          (profile.internal_cdn_fraction > 0.5 ? 2.0 : 0.0);
      base *= dns_factor;
      break;
    }
    case Provider::kMajestic: {
      // Link subnets correlate with longevity/size more than traffic.
      base = std::log1p(static_cast<double>(profile.internal_page_count)) *
             std::sqrt(profile.site_visit_rate);
      break;
    }
    default:
      break;
  }

  // AR(1) walk in log space from day 0. Panel-based lists measure
  // low-traffic sites from far fewer samples, so their relative noise
  // grows down the rank tail (Scheitle et al.: rank stability decreases
  // deeper in the list).
  ProviderNoise noise = default_noise(p);
  if (noise.sigma <= 0.0) return base;
  if (p == Provider::kAlexa || p == Provider::kQuantcast) {
    noise.sigma *= std::clamp(
        0.35 + 0.30 * std::log(static_cast<double>(rank) / 30.0), 0.35, 2.2);
  }
  util::Rng walk(seed_ ^ util::fnv1a(provider_name(p)) ^ util::fnv1a(domain));
  const double innovation_sigma =
      noise.sigma * std::sqrt(1.0 - noise.daily_rho * noise.daily_rho);
  double log_jitter = walk.normal(0.0, noise.sigma);  // stationary start
  for (std::uint64_t d = 0; d < day; ++d)
    log_jitter = noise.daily_rho * log_jitter +
                 walk.normal(0.0, innovation_sigma);
  return base * std::exp(log_jitter);
}

TopList TopListFactory::list_on_day(Provider p, std::uint64_t day,
                                    std::size_t size) const {
  const std::size_t universe = web_->site_count();
  std::vector<std::size_t> ranks(universe);
  std::iota(ranks.begin(), ranks.end(), std::size_t{1});

  std::vector<double> scores(universe + 1, 0.0);
  for (std::size_t rank = 1; rank <= universe; ++rank)
    scores[rank] =
        domain_score(p, rank, web_->domains()[rank - 1], day);

  std::sort(ranks.begin(), ranks.end(), [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });

  const std::size_t take = std::min(size, universe);
  std::vector<std::string> domains;
  domains.reserve(take);
  for (std::size_t i = 0; i < take; ++i)
    domains.push_back(web_->domains()[ranks[i] - 1]);
  return TopList(provider_name(p) + "-day" + std::to_string(day),
                 std::move(domains));
}

TopList TopListFactory::weekly_list(Provider p, std::uint64_t week,
                                    std::size_t size) const {
  return list_on_day(p, week * 7, size);
}

}  // namespace hispar::toplist
