#include "toplist/toplist.h"

#include <set>
#include <stdexcept>

namespace hispar::toplist {

TopList::TopList(std::string name, std::vector<std::string> domains)
    : name_(std::move(name)), domains_(std::move(domains)) {
  rank_.reserve(domains_.size());
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    if (!rank_.emplace(domains_[i], i + 1).second)
      throw std::invalid_argument("TopList: duplicate domain " + domains_[i]);
  }
}

const std::string& TopList::domain_at(std::size_t rank) const {
  if (rank == 0 || rank > domains_.size())
    throw std::out_of_range("TopList: rank out of range");
  return domains_[rank - 1];
}

std::optional<std::size_t> TopList::rank_of(const std::string& domain) const {
  const auto it = rank_.find(domain);
  if (it == rank_.end()) return std::nullopt;
  return it->second;
}

bool TopList::contains(const std::string& domain) const {
  return rank_.count(domain) > 0;
}

TopList TopList::top(std::size_t n) const {
  std::vector<std::string> head(domains_.begin(),
                                domains_.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        std::min(n, domains_.size())));
  return TopList(name_ + "-top" + std::to_string(head.size()),
                 std::move(head));
}

double turnover(const TopList& before, const TopList& after) {
  if (before.size() == 0) throw std::invalid_argument("turnover: empty list");
  std::size_t gone = 0;
  for (const auto& domain : before.domains())
    if (!after.contains(domain)) ++gone;
  return static_cast<double>(gone) / static_cast<double>(before.size());
}

double jaccard_overlap(const TopList& a, const TopList& b) {
  std::set<std::string> all(a.domains().begin(), a.domains().end());
  std::size_t common = 0;
  for (const auto& domain : b.domains())
    if (all.count(domain)) ++common;
  all.insert(b.domains().begin(), b.domains().end());
  if (all.empty()) return 1.0;
  return static_cast<double>(common) / static_cast<double>(all.size());
}

}  // namespace hispar::toplist
