// HTTP Archive (HAR) model.
//
// §3.1: "After each web-page visit using the automated browser, we
// collected the HTTP Archive (HAR) files from the browser and data from
// the Navigation Timing (NT) API." All of the paper's per-object
// analysis (sizes, MIME mixes, cacheability, CDN bytes, timing phases)
// reads HAR entries, so the analysis pipeline in src/core consumes this
// representation — not the ground-truth WebPage — exactly as a real
// measurement toolchain would.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/url.h"

namespace hispar::browser {

// Per-entry timing phases, in milliseconds (w3c HAR spec §4.2.16).
struct HarTimings {
  double blocked = 0.0;
  double dns = 0.0;
  double connect = 0.0;  // TCP portion
  double ssl = 0.0;      // TLS portion
  double send = 0.0;
  double wait = 0.0;
  double receive = 0.0;

  double total() const {
    return blocked + dns + connect + ssl + send + wait + receive;
  }
};

struct HarEntry {
  std::string url;
  std::string host;
  util::Scheme scheme = util::Scheme::kHttps;
  std::string mime_type;              // concrete type, e.g. "image/jpeg"
  std::string request_method = "GET";
  // 200 for successful fetches, 5xx for server errors, 0 when the fetch
  // never produced a response (DNS/connect failures, watchdog aborts).
  int status = 200;
  // Failure description for entries that did not complete cleanly
  // (empty = no error). Mirrors the HAR `_error` custom field real
  // browsers emit for failed requests.
  std::string error;
  double body_size = 0.0;             // bytes
  bool cacheable = false;             // from Cache-Control/response code
  double started_at_ms = 0.0;         // relative to navigationStart
  HarTimings timings;
  std::vector<std::string> response_headers;  // "name: value"
  std::optional<std::string> dns_cname;       // observed CNAME target
  // X-Cache response header value ("HIT"/"MISS") when present.
  std::optional<std::string> x_cache;

  double finished_at_ms() const { return started_at_ms + timings.total(); }
};

// Navigation Timing essentials (§4: PLT = navigationStart..firstPaint).
struct NavigationTiming {
  double navigation_start_ms = 0.0;
  double first_paint_ms = 0.0;
  double on_load_ms = 0.0;
};

struct HarLog {
  std::string page_url;
  std::vector<HarEntry> entries;
  NavigationTiming nav;

  double total_bytes() const;
  std::size_t object_count() const { return entries.size(); }
  std::size_t unique_domains() const;
  // Passive mixed content: an HTTPS page with >= 1 HTTP subresource.
  bool has_mixed_content() const;
};

// Serialize to (a subset of) the HAR 1.2 JSON format — enough for
// external tooling to ingest.
std::string to_har_json(const HarLog& log);

}  // namespace hispar::browser
