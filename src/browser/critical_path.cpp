#include "browser/critical_path.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace hispar::browser {

CriticalPath critical_path(const web::WebPage& page,
                           const LoadResult& result) {
  if (result.har.entries.size() != page.objects.size())
    throw std::invalid_argument(
        "critical_path: load result does not match page");

  // HAR entries are in completion-processing order; map back to object
  // indices by URL (object URLs are unique within a page).
  std::unordered_map<std::string, const HarEntry*> by_url;
  for (const auto& entry : result.har.entries) by_url[entry.url] = &entry;

  int last_object = -1;
  double last_finish = -1.0;
  for (std::size_t i = 0; i < page.objects.size(); ++i) {
    const auto it = by_url.find(page.objects[i].url);
    if (it == by_url.end())
      throw std::invalid_argument("critical_path: URL missing from HAR");
    const double finish = it->second->finished_at_ms();
    if (finish > last_finish) {
      last_finish = finish;
      last_object = static_cast<int>(i);
    }
  }

  CriticalPath path;
  path.length_ms = last_finish;
  // Walk ancestors back to the root.
  for (int index = last_object; index >= 0;
       index = page.objects[static_cast<std::size_t>(index)].parent_index) {
    path.object_indices.push_back(index);
    const auto& entry = *by_url.at(page.objects[static_cast<std::size_t>(index)].url);
    path.fetch_ms += entry.timings.total();
  }
  std::reverse(path.object_indices.begin(), path.object_indices.end());
  path.hops = static_cast<int>(path.object_indices.size()) - 1;
  return path;
}

web::WebPage push_all_objects(web::WebPage page) {
  for (std::size_t i = 1; i < page.objects.size(); ++i) {
    page.objects[i].depth = 1;
    page.objects[i].parent_index = 0;
  }
  return page;
}

web::WebPage with_added_hints(web::WebPage page, int dns_prefetch,
                              int preconnect) {
  page.hints.dns_prefetch += dns_prefetch;
  page.hints.preconnect += preconnect;
  return page;
}

}  // namespace hispar::browser
