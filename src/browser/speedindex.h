// SpeedIndex.
//
// §4: "The SI score measures how quickly the content on a web page is
// visually populated. A low SI score indicates that the page loads
// quickly." SpeedIndex is defined as the integral over time of
// (1 - visual completeness). We model visual completeness as the
// byte-weighted fraction of *visual* content (images, HTML/CSS, fonts,
// video) painted by time t; an object paints shortly after its download
// completes, and nothing paints before first paint.
#pragma once

#include <vector>

namespace hispar::browser {

struct PaintEvent {
  double time_ms = 0.0;      // when this content became visible
  double visual_weight = 0.0;  // its contribution to completeness
};

// Returns the SpeedIndex in milliseconds. `first_paint_ms` clamps every
// event: content cannot appear before the first paint. Events with
// non-positive weight are ignored. Returns 0 for no visual content.
double speed_index_ms(std::vector<PaintEvent> events, double first_paint_ms);

}  // namespace hispar::browser
