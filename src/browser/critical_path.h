// Dependency-graph analysis and what-if optimizations (§5.4).
//
// Prior work (WProf, Polaris, Shandian, Vroom, Klotski) builds dependency
// graphs to find and shorten the critical path of a page load; §5.4 notes
// these systems were designed AND evaluated on landing pages only, whose
// dependency graphs are deeper — so their reported gains may not carry
// over to internal pages. This module provides:
//  * critical-path extraction from a load (the chain of fetches that
//    determined onLoad),
//  * a Polaris/Server-Push-style page transform that makes every object
//    discoverable from the root (depth 1), eliminating discovery chains,
// so the gains can be measured per page type (bench_optimizations).
#pragma once

#include <vector>

#include "browser/loader.h"
#include "web/page.h"

namespace hispar::browser {

struct CriticalPath {
  // Object indices (into WebPage::objects) from the root to the object
  // whose completion defined onLoad.
  std::vector<int> object_indices;
  double length_ms = 0.0;  // finish time of the last object on the path
  int hops = 0;            // dependency edges on the path
  // Share of the path spent discovering objects (parse gaps) vs.
  // fetching them.
  double fetch_ms = 0.0;
};

// Requires `result` to come from loading exactly `page`.
CriticalPath critical_path(const web::WebPage& page, const LoadResult& result);

// Fine-grained dependency resolution / HTTP2 server push: every object
// becomes discoverable as soon as the root document is parsed (depth 1).
// Returns the transformed page; sizes, hosts and cacheability are
// untouched.
web::WebPage push_all_objects(web::WebPage page);

// §5.5's open question: "which hints could help internal pages, and to
// what extent" — adds `count` dns-prefetch + preconnect hints to a page.
web::WebPage with_added_hints(web::WebPage page, int dns_prefetch,
                              int preconnect);

}  // namespace hispar::browser
