// Quality-of-experience metrics beyond PLT.
//
// §4 and §8 note PLT's "well-known shortcomings" and cite the QoE line
// of work (SpeedIndex, above-the-fold time, Vesper's time-to-
// interactivity). This module derives those richer metrics from a load:
//  * visual_complete_ms(q): when the byte-weighted visual completeness
//    first reaches quantile q (ATF-time is q = 0.9 ..1.0);
//  * time_to_interactive_ms: first paint plus the serialized cost of
//    the page's JavaScript (parse/compile/execute), a Vesper-flavoured
//    lower bound on when the page responds to input.
#pragma once

#include "browser/loader.h"
#include "web/page.h"

namespace hispar::browser {

struct QoeMetrics {
  double first_paint_ms = 0.0;
  double visual_complete_90_ms = 0.0;
  double visual_complete_ms = 0.0;   // 100%
  double time_to_interactive_ms = 0.0;
};

// Requires `result` to come from loading exactly `page`.
QoeMetrics qoe_metrics(const web::WebPage& page, const LoadResult& result);

}  // namespace hispar::browser
