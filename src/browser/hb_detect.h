// Header-bidding detection (§6.3).
//
// The paper uses the open-source tools from Aqeel et al., "Untangling
// Header Bidding Lore" (PAM'20) to find pages running client-side ad
// auctions. Detection works from the HAR alone: a page runs header
// bidding if it issues bid requests to two or more known HB exchange
// endpoints before the ad is served; ad slots are approximated by the
// number of distinct ad-network creative requests.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "browser/har.h"

namespace hispar::browser {

struct HbResult {
  bool header_bidding = false;
  std::size_t exchanges_contacted = 0;  // distinct HB endpoints
  std::size_t ad_slots = 0;
};

class HbDetector {
 public:
  static HbDetector standard();

  explicit HbDetector(std::vector<std::string> exchange_patterns,
                      std::vector<std::string> ad_network_patterns);

  HbResult analyze(const HarLog& log) const;

  // Per-URL classification analyze() is built from: {matches an
  // exchange pattern, matches an ad-network pattern}. Exposed so
  // callers that see the same URL many times can memoize the pattern
  // scan (the globs dominate campaign CPU) and replicate analyze()'s
  // distinct-host / distinct-URL aggregation themselves.
  std::pair<bool, bool> classify_url(std::string_view url) const;

 private:
  std::vector<std::string> exchange_patterns_;
  std::vector<std::string> ad_network_patterns_;
};

}  // namespace hispar::browser
