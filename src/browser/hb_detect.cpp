#include "browser/hb_detect.h"

#include <set>

#include "util/strings.h"

namespace hispar::browser {

HbDetector HbDetector::standard() {
  return HbDetector(
      {
          // Known header-bidding exchanges (prebid adapters).
          "*ib.adnxs.com*",
          "*casalemedia.com*",
          "*hbopenbid.pubmatic.com*",
          "*fastlane.rubiconproject.com*",
          "*c.amazon-adsystem.com*",
          "*://bid.*",
      },
      {
          "*doubleclick.net*",
          "*criteo.net*",
          "*://ads.*",
      });
}

HbDetector::HbDetector(std::vector<std::string> exchange_patterns,
                       std::vector<std::string> ad_network_patterns)
    : exchange_patterns_(std::move(exchange_patterns)),
      ad_network_patterns_(std::move(ad_network_patterns)) {}

std::pair<bool, bool> HbDetector::classify_url(std::string_view url) const {
  bool exchange = false;
  for (const auto& pattern : exchange_patterns_) {
    if (util::glob_match(pattern, url)) {
      exchange = true;
      break;
    }
  }
  bool creative = false;
  for (const auto& pattern : ad_network_patterns_) {
    if (util::glob_match(pattern, url)) {
      creative = true;
      break;
    }
  }
  return {exchange, creative};
}

HbResult HbDetector::analyze(const HarLog& log) const {
  std::set<std::string> exchanges;
  std::set<std::string> creatives;
  for (const auto& entry : log.entries) {
    const auto [exchange, creative] = classify_url(entry.url);
    if (exchange) exchanges.insert(entry.host);
    // One creative request per URL; distinct URLs ~ slots.
    if (creative) creatives.insert(entry.url);
  }
  HbResult result;
  result.exchanges_contacted = exchanges.size();
  // Client-side auctions hit multiple exchanges from the page itself.
  result.header_bidding = exchanges.size() >= 2;
  result.ad_slots = creatives.size();  // one creative request per slot
  return result;
}

}  // namespace hispar::browser
