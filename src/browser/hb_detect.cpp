#include "browser/hb_detect.h"

#include <set>

#include "util/strings.h"

namespace hispar::browser {

HbDetector HbDetector::standard() {
  return HbDetector(
      {
          // Known header-bidding exchanges (prebid adapters).
          "*ib.adnxs.com*",
          "*casalemedia.com*",
          "*hbopenbid.pubmatic.com*",
          "*fastlane.rubiconproject.com*",
          "*c.amazon-adsystem.com*",
          "*://bid.*",
      },
      {
          "*doubleclick.net*",
          "*criteo.net*",
          "*://ads.*",
      });
}

HbDetector::HbDetector(std::vector<std::string> exchange_patterns,
                       std::vector<std::string> ad_network_patterns)
    : exchange_patterns_(std::move(exchange_patterns)),
      ad_network_patterns_(std::move(ad_network_patterns)) {}

HbResult HbDetector::analyze(const HarLog& log) const {
  std::set<std::string> exchanges;
  std::set<std::string> creatives;
  for (const auto& entry : log.entries) {
    for (const auto& pattern : exchange_patterns_) {
      if (util::glob_match(pattern, entry.url)) {
        exchanges.insert(entry.host);
        break;
      }
    }
    for (const auto& pattern : ad_network_patterns_) {
      if (util::glob_match(pattern, entry.url)) {
        // One creative request per URL; distinct URLs ~ slots.
        creatives.insert(entry.url);
        break;
      }
    }
  }
  HbResult result;
  result.exchanges_contacted = exchanges.size();
  // Client-side auctions hit multiple exchanges from the page itself.
  result.header_bidding = exchanges.size() >= 2;
  result.ad_slots = creatives.size();  // one creative request per slot
  return result;
}

}  // namespace hispar::browser
