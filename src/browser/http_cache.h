// Per-client HTTP browser cache with standards-style semantics.
//
// The measurement pipeline's CDN layer models *shared* caches; this is
// the private cache a real browser carries between the pages of one
// browsing session (§5: the landing-vs-internal cacheability contrast
// is conditioned on users reaching internal pages *through* the landing
// page with a warm cache). Entries are keyed by web::WebObject::
// cache_key and carry an absolute expiry derived from the object's
// deterministic freshness lifetime:
//
//   lookup() == kFresh  within the lifetime — served locally, no
//                       network, no fault-injector attempt consumed;
//   lookup() == kStale  past the lifetime — the loader revalidates
//                       over the network (304-style: headers move,
//                       the body does not) and revalidated() renews
//                       the entry;
//   lookup() == kMiss   absent — full fetch, then insert().
//
// Byte-capacity LRU eviction mirrors cdn::LruCache (fresh hits and
// revalidations refresh recency; oversized updates evict). Everything
// is a pure function of the call sequence — no RNG, no wall clock — so
// session replay inherits the campaign's byte-identity contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace hispar::browser {

enum class CacheOutcome : std::uint8_t { kMiss = 0, kFresh, kStale };

// Lifetime telemetry of one cache; merged into the session report.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t fresh_hits = 0;
  std::uint64_t revalidations = 0;  // stale lookups later renewed
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  bool operator==(const CacheStats&) const = default;
};

class HttpCache {
 public:
  explicit HttpCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {
    if (capacity_ == 0) throw std::invalid_argument("HttpCache: capacity 0");
  }

  // Classify `key` at virtual time `now_s`. Fresh hits refresh recency;
  // stale entries stay resident awaiting revalidated() or eviction.
  CacheOutcome lookup(const std::string& key, double now_s);

  // Store a freshly fetched object. Oversized objects are not admitted;
  // an oversized update evicts the resident entry (cdn::LruCache
  // semantics).
  void insert(const std::string& key, std::size_t size_bytes, double now_s,
              double freshness_lifetime_s);

  // A 304-style revalidation succeeded: renew the entry's lifetime and
  // recency. A no-op if the entry was evicted since lookup().
  void revalidated(const std::string& key, double now_s,
                   double freshness_lifetime_s);

  std::size_t used_bytes() const { return used_; }
  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t entries() const { return index_.size(); }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string key;
    std::size_t size = 0;
    double expires_s = 0.0;
  };

  void evict_one();

  std::size_t capacity_;
  std::size_t used_ = 0;
  CacheStats stats_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

// The client state a browsing session threads across its page loads:
// the private HTTP cache, warm DNS answers, and per-origin connection
// keep-alive. std::map keeps iteration deterministic (serialization
// and debugging never depend on hash order).
struct SessionState {
  explicit SessionState(std::size_t cache_capacity_bytes)
      : cache(cache_capacity_bytes) {}

  HttpCache cache;
  // host -> absolute virtual expiry of the cached DNS answer.
  std::map<std::string, double> dns_expiry_s;
  // host -> virtual time the origin's connection pool was last used;
  // within the keep-alive window the next page starts with a warm
  // connection instead of a fresh handshake.
  std::map<std::string, double> origin_last_used_s;
};

}  // namespace hispar::browser
