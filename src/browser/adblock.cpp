#include "browser/adblock.h"

#include "util/strings.h"

namespace hispar::browser {

AdBlocker AdBlocker::easylist_lite() {
  // Pattern syntax: plain globs over the full URL. The list mirrors the
  // structure of EasyList: well-known tracker/ad hosts plus generic
  // path/subdomain rules.
  return AdBlocker({
      // Curated head services (see web/thirdparty.cpp).
      "*google-analytics.com*",
      "*googletagmanager.com*",
      "*doubleclick.net*",
      "*connect.facebook.net*",
      "*platform.twitter.com*",
      "*js-agent.newrelic.com*",
      "*criteo.net*",
      "*adnxs.com*",
      "*casalemedia.com*",
      "*pubmatic.com*",
      "*rubiconproject.com*",
      "*amazon-adsystem.com*",
      "*bat.bing.com*",
      "*analytics.tiktok.com*",
      "*scorecardresearch.com*",
      "*optimizely.com*",
      "*snap.licdn.com*",
      "*stats.wp.com*",
      "*segment.com*",
      "*hotjar.com*",
      // Generic rules (synthetic tail naming conventions).
      "*://pixel.*",
      "*://ads.*",
      "*://bid.*",
      "*://metrics.*",
      "*/track/*",
  });
}

AdBlocker::AdBlocker(std::vector<std::string> patterns)
    : patterns_(std::move(patterns)) {}

bool AdBlocker::matches(std::string_view url) const {
  for (const auto& pattern : patterns_)
    if (util::glob_match(pattern, url)) return true;
  return false;
}

std::size_t AdBlocker::count_blocked(const HarLog& log) const {
  std::size_t count = 0;
  for (const auto& entry : log.entries)
    if (matches(entry.url)) ++count;
  return count;
}

}  // namespace hispar::browser
