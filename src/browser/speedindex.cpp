#include "browser/speedindex.h"

#include <algorithm>

namespace hispar::browser {

double speed_index_ms(std::vector<PaintEvent> events, double first_paint_ms) {
  double total_weight = 0.0;
  for (auto& e : events) {
    if (e.visual_weight <= 0.0) continue;
    e.time_ms = std::max(e.time_ms, first_paint_ms);
    total_weight += e.visual_weight;
  }
  if (total_weight <= 0.0) return 0.0;

  // Visual completeness is a step function that jumps by w_i/W at t_i;
  // SI = integral of (1 - VC) dt = sum_i (w_i / W) * t_i.
  double si = 0.0;
  for (const auto& e : events) {
    if (e.visual_weight <= 0.0) continue;
    si += (e.visual_weight / total_weight) * e.time_ms;
  }
  return si;
}

}  // namespace hispar::browser
