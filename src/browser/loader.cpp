#include "browser/loader.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "browser/speedindex.h"
#include "net/handshake.h"
#include "web/mime.h"

namespace hispar::browser {

namespace {

constexpr double kMssBytes = 1460.0;
constexpr double kInitialCwndSegments = 10.0;
constexpr double kWarmCwndSegments = 40.0;

// Failure timing model: a SERVFAIL is a fast negative answer from the
// resolver; a resolver timeout is the classic ~5 s client give-up; a
// failed object attempt is retried after an exponentially growing pause.
constexpr double kDnsServfailMs = 80.0;
constexpr double kDnsTimeoutMs = 5000.0;
constexpr double kObjectRetryBackoffMs = 250.0;
// Retry backoff doubles per attempt but never past this ceiling (and
// the exponent itself is clamped: `1 << attempt` would be undefined
// behaviour once --max-retries pushes attempt >= 31).
constexpr double kMaxObjectBackoffMs = 8000.0;
// Hedged DNS fires the second query once the primary has been out this
// long — the deterministic P95 of the resolver model's uncached path
// (cold lookups walk the hierarchy; warm ones answer in a few ms).
constexpr double kDnsHedgeDelayMs = 250.0;

// Browsing-session model (LoadOptions::session). A browser-cache fresh
// hit is served from local disk/memory: a fixed lookup cost plus a
// size-proportional read, no network at all. A 304-style revalidation
// moves only headers on the wire regardless of body size. Origin
// connection pools survive between the pages of one session for the
// keep-alive window (Apache/nginx-style idle timeout).
constexpr double kCacheReadBaseMs = 0.2;
constexpr double kCacheReadPerByteMs = 2.0e-6;
constexpr double kRevalidateBytes = 512.0;
constexpr double kKeepAliveS = 115.0;

// State the browser keeps per remote host during one page load.
struct HostState {
  bool dns_done = false;
  double rtt_ms = 0.0;
  net::Region server_region = net::Region::kNorthAmerica;
  bool resolved_region = false;
  // Per-connection next-free time (HTTP/1.1); HTTP/2 keeps exactly one
  // entry and multiplexes on it.
  std::vector<double> connection_free;
  bool session_seen = false;  // enables TLS session resumption
};

double transfer_rounds(double bytes, bool warm_connection) {
  const double cwnd = warm_connection ? kWarmCwndSegments : kInitialCwndSegments;
  const double segments = std::max(1.0, bytes / kMssBytes);
  if (segments <= cwnd) return 0.0;
  return std::ceil(std::log2(segments / cwnd + 1.0));
}

}  // namespace

std::string_view to_string(LoadStatus status) {
  switch (status) {
    case LoadStatus::kOk: return "ok";
    case LoadStatus::kDegraded: return "degraded";
    case LoadStatus::kFailed: return "failed";
  }
  return "unknown";
}

// Pooled per-load buffers. Per-host state is a vector indexed by the
// page's dense host ids (WebPage::hosts) instead of a string-keyed map;
// the dependency schedule lives in flat reusable arrays (children in
// CSR layout, the ready queue as an explicit binary heap — the same
// push_heap/pop_heap algorithm std::priority_queue uses, so extraction
// order is identical).
struct PageLoader::Scratch {
  std::vector<HostState> hosts;
  std::vector<char> hint_seen;
  std::vector<double> finish;
  std::vector<double> ready;
  std::vector<std::pair<double, std::size_t>> heap;
  std::vector<std::uint32_t> child_offsets;
  std::vector<std::uint32_t> child_cursor;
  std::vector<std::uint32_t> child_items;
  // Fallback host index for pages without a prebuilt one.
  std::vector<int> local_ids;
  std::unordered_map<std::string_view, int> local_index;
};

PageLoader::PageLoader(LoaderEnv env)
    : env_(env), scratch_(std::make_unique<Scratch>()) {
  if (env_.latency == nullptr || env_.registry == nullptr ||
      env_.cdn == nullptr || env_.resolver == nullptr)
    throw std::invalid_argument("PageLoader: incomplete environment");
  if (env_.obs.metrics != nullptr)
    wait_hist_ = &env_.obs.metrics->histogram("loader.object_wait_ms",
                                              obs::time_ms_buckets());
}

PageLoader::~PageLoader() = default;

LoadResult PageLoader::load(const web::WebPage& page, util::Rng rng,
                            const LoadOptions& options) const {
  if (page.objects.empty())
    throw std::invalid_argument("PageLoader: page has no objects");

  // A cold browser profile (§3.1) opens a fresh DoH connection per
  // page: the first lookup of this load pays connection setup again.
  if (env_.doh != nullptr) env_.doh->new_session();

  LoadResult result;
  result.har.page_url = page.url.str();
  result.har.entries.reserve(page.objects.size());

  Scratch& scratch = *scratch_;
  const std::size_t n = page.objects.size();

  // Host ids: generated pages carry a prebuilt index; hand-built pages
  // get a local one (one hash per object, once per load).
  std::size_t host_count = 0;
  const bool indexed = !page.hosts.empty();
  if (indexed) {
    host_count = page.hosts.size();
    for (const auto& o : page.objects)
      if (o.host_id < 0 || static_cast<std::size_t>(o.host_id) >= host_count)
        throw std::logic_error(
            "PageLoader: stale host index (call WebPage::rebuild_host_index)");
  } else {
    scratch.local_index.clear();
    scratch.local_ids.assign(n, 0);
    int next = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] = scratch.local_index.try_emplace(
          std::string_view(page.objects[i].host), next);
      if (inserted) ++next;
      scratch.local_ids[i] = it->second;
    }
    host_count = static_cast<std::size_t>(next);
  }
  const auto id_of = [&](std::size_t index) {
    return indexed ? static_cast<std::size_t>(page.objects[index].host_id)
                   : static_cast<std::size_t>(scratch.local_ids[index]);
  };
  if (scratch.hosts.size() < host_count) scratch.hosts.resize(host_count);
  for (std::size_t i = 0; i < host_count; ++i) {
    HostState& hs = scratch.hosts[i];
    hs.dns_done = false;
    hs.rtt_ms = 0.0;
    hs.server_region = net::Region::kNorthAmerica;
    hs.resolved_region = false;
    hs.connection_free.clear();  // keeps capacity for the next load
    hs.session_seen = false;
  }

  const net::TransportProtocol base_transport =
      options.transport_override.value_or(page.transport);
  // Faults disabled => all failure paths below are dead code and every
  // operation (RNG draws, resolver/CDN calls) matches a fault-free
  // loader exactly. The chaos oracle carries the same contract: null
  // means no branch below consumes extra randomness.
  const bool faulty = options.faults != nullptr;
  const bool chaotic = options.chaos != nullptr;
  // Browsing-session state. Null (the cold profile of §3.1) keeps every
  // session branch below dead and draw-free, so sessions-off loads are
  // bit-identical to loads on a loader without this feature.
  SessionState* const session = options.session;
  // Campaign virtual clock for an in-load offset (chaos windows and
  // breakers live on campaign time, not per-load time).
  const auto clock_s = [&](double in_load_ms) {
    return options.start_time_s + in_load_ms / 1000.0;
  };

  // Object-fetch trace spans ride the virtual clock: the load's start
  // offset plus the object's in-load window, in microseconds.
  const bool tracing = env_.obs.trace != nullptr && env_.obs.trace_objects;
  const auto record_span = [&](const HarEntry& entry, double ready_at,
                               double end_ms) {
    if (!tracing) return;
    obs::TraceSpan span;
    span.name = entry.host;
    span.cat = "object";
    span.ts_us = obs::to_trace_us(options.start_time_s + ready_at / 1000.0);
    span.dur_us = obs::to_trace_us((end_ms - ready_at) / 1000.0);
    span.tid = env_.obs.tid;
    span.args.emplace_back("url", entry.url);
    if (!entry.error.empty()) span.args.emplace_back("error", entry.error);
    env_.obs.trace->record(std::move(span));
  };

  // Resolve the serving region and RTT for a host, lazily, from the
  // first object fetched from it.
  const auto host_state = [&](std::size_t index) -> HostState& {
    const web::WebObject& o = page.objects[index];
    HostState& hs = scratch.hosts[id_of(index)];
    if (!hs.resolved_region) {
      if (o.via_cdn) {
        const auto& provider = env_.registry->provider(o.cdn_provider_id);
        hs.server_region =
            env_.edge_pin ? *env_.edge_pin
                          : env_.registry->nearest_edge(provider, env_.vantage,
                                                        *env_.latency);
      } else {
        hs.server_region = o.origin_region;
      }
      hs.rtt_ms = env_.latency->rtt(env_.vantage, hs.server_region, rng);
      hs.resolved_region = true;
      if (session != nullptr) {
        // Session carry-over, applied on the first touch of this host:
        // a still-fresh DNS answer from an earlier page skips the
        // lookup (the same mechanism dns-prefetch uses), and an origin
        // used within the keep-alive window starts with one idle
        // connection and a resumable TLS session. No RNG draws — the
        // load's draw order is untouched.
        const auto dns_it = session->dns_expiry_s.find(o.host);
        if (dns_it != session->dns_expiry_s.end() &&
            dns_it->second > options.start_time_s)
          hs.dns_done = true;
        const auto conn_it = session->origin_last_used_s.find(o.host);
        if (conn_it != session->origin_last_used_s.end() &&
            conn_it->second + kKeepAliveS >= options.start_time_s) {
          hs.session_seen = true;
          hs.connection_free.push_back(0.0);
        }
      }
    }
    return hs;
  };

  const auto dns_record_for = [&](const web::WebObject& o) {
    net::DnsRecord record;
    record.domain = o.host;
    record.cdn_request_routing = o.via_cdn;
    // Deterministic per-host TTL in [300, 3600) s; CDN-routed names are
    // capped by the resolver model.
    record.ttl_s = 300.0 + static_cast<double>(util::fnv1a(o.host) % 3300u);
    record.client_query_rate = std::max(1e-6, o.request_rate * 5.0);
    record.authoritative_region = o.origin_region;
    return record;
  };

  // --- resource hints (§5.5) ---
  // dns-prefetch warms DNS for the first N distinct non-root hosts;
  // preconnect additionally establishes a connection at t=0 (off the
  // critical path, but the handshake still happens and is counted).
  if (options.use_resource_hints) {
    int dns_budget = page.hints.dns_prefetch + page.hints.preconnect;
    int conn_budget = page.hints.preconnect;
    scratch.hint_seen.assign(host_count, 0);
    for (std::size_t i = 1; i < page.objects.size() && dns_budget > 0; ++i) {
      const auto& o = page.objects[i];
      if (o.host == page.url.host) continue;
      const std::size_t id = id_of(i);
      if (scratch.hint_seen[id]) continue;
      scratch.hint_seen[id] = 1;
      HostState& hs = host_state(i);
      hs.dns_done = true;  // completed before the object is needed
      --dns_budget;
      if (conn_budget > 0) {
        --conn_budget;
        // Preconnect only helps when the crossorigin mode matches the
        // eventual request; mismatches make the browser open a second
        // connection anyway (a well-documented footgun), so roughly
        // half of the preconnects yield a usable connection.
        if (rng.chance(0.5)) {
          const auto cost = net::handshake_cost(
              o.is_https() ? net::TransportProtocol::kTcpTls13
                           : net::TransportProtocol::kCleartextHttp,
              false);
          const double t = cost.round_trips * hs.rtt_ms + cost.cpu_ms;
          hs.connection_free.push_back(t);
          hs.session_seen = true;
          ++result.handshakes;
          result.handshake_time_ms += t;
        }
      }
    }
  }

  // --- dependency-driven schedule ---
  scratch.finish.assign(n, 0.0);
  scratch.ready.assign(n, 0.0);
  std::vector<double>& finish = scratch.finish;
  std::vector<double>& ready = scratch.ready;
  // Min-heap of (ready_time, index); an object becomes ready when its
  // parent has been fetched and parsed.
  auto& heap = scratch.heap;
  heap.clear();
  const auto heap_push = [&](double at, std::size_t index) {
    heap.emplace_back(at, index);
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  };
  // Children in CSR layout: child_items[child_offsets[p] ..
  // child_offsets[p+1]) are p's children in ascending index order.
  scratch.child_offsets.assign(n + 1, 0);
  for (std::size_t i = 1; i < n; ++i) {
    const int parent = page.objects[i].parent_index;
    if (parent < 0 || static_cast<std::size_t>(parent) >= i)
      throw std::logic_error("PageLoader: malformed dependency graph");
    ++scratch.child_offsets[static_cast<std::size_t>(parent) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i)
    scratch.child_offsets[i] += scratch.child_offsets[i - 1];
  scratch.child_cursor.assign(scratch.child_offsets.begin(),
                              scratch.child_offsets.end());
  scratch.child_items.assign(n - 1, 0);
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<std::size_t>(page.objects[i].parent_index);
    scratch.child_items[scratch.child_cursor[parent]++] =
        static_cast<std::uint32_t>(i);
  }
  heap_push(0.0, 0);

  double first_paint_gate = 0.0;  // last render-blocking completion
  // Render-blocking resources also serialize on the browser main
  // thread: stylesheets and synchronous scripts are parsed/executed
  // before first paint, so their *count and bytes* delay rendering even
  // when their downloads overlap perfectly.
  double blocking_main_thread_ms = 0.0;
  std::vector<PaintEvent> paint_events;

  // Success tail shared by the network path and the browser-cache fresh
  // hit: render-blocking bookkeeping, paint scheduling, telemetry, and
  // child discovery.
  const auto complete_object = [&](std::size_t index, const web::WebObject& o,
                                   HarEntry& entry, double ready_at, double t) {
    if (o.render_blocking || index == 0) {
      first_paint_gate = std::max(first_paint_gate, t);
      blocking_main_thread_ms +=
          o.mime == web::MimeCategory::kJavaScript
              ? 4.0 + o.size_bytes * 3.0e-4   // parse + execute
              : 2.0 + o.size_bytes * 1.0e-4;  // parse + style calc
    }
    if (web::is_visual(o.mime))
      paint_events.push_back(PaintEvent{t + 16.0, o.size_bytes});

    if (wait_hist_ != nullptr) wait_hist_->observe(entry.timings.wait);
    record_span(entry, ready_at, t);
    result.har.entries.push_back(std::move(entry));

    // Children become ready after this object is parsed.
    for (std::size_t c = scratch.child_offsets[index];
         c < scratch.child_offsets[index + 1]; ++c) {
      const std::size_t child = scratch.child_items[c];
      const double parse_delay = rng.uniform(3.0, 15.0);
      ready[child] = t + parse_delay;
      heap_push(ready[child], child);
    }
  };

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [ready_at, index] = heap.back();
    heap.pop_back();
    const web::WebObject& o = page.objects[index];
    HostState& hs = host_state(index);

    HarEntry entry;
    entry.url = o.url;
    entry.host = o.host;
    entry.scheme = o.scheme;
    entry.mime_type = std::string(web::representative_mime_type(o.mime));
    entry.body_size = o.size_bytes;
    entry.cacheable = o.cacheable;
    entry.started_at_ms = ready_at;
    entry.dns_cname = o.dns_cname;

    // Page-level watchdog: fetches that would start after the abort
    // deadline never happen (Firefox kills hung loads at ~60 s). The
    // deadline holds whether or not faults are being injected — a
    // fault-free pathological page must not run unbounded either.
    if (ready_at > options.page_timeout_ms) {
      entry.status = 0;
      entry.error = "page-watchdog-abort";
      entry.body_size = 0.0;
      result.watchdog_abort = true;
      ++result.failed_objects;
      record_span(entry, ready_at, ready_at);
      result.har.entries.push_back(std::move(entry));
      continue;  // children were never discovered
    }

    // Browser-cache consult (session replay only). A fresh hit is
    // served locally: no DNS, no connection, no breaker admission or
    // feedback, and no fault/chaos decision — local reads cannot trip
    // network defenses or consume a fault-injector draw. Stale entries
    // and misses fall through to the network path below.
    CacheOutcome cache_outcome = CacheOutcome::kMiss;
    bool cache_managed = false;
    if (session != nullptr && !o.cache_key.empty()) {
      cache_managed = true;
      cache_outcome = session->cache.lookup(o.cache_key, clock_s(ready_at));
      if (cache_outcome == CacheOutcome::kFresh) {
        const double read_ms =
            kCacheReadBaseMs + o.size_bytes * kCacheReadPerByteMs;
        entry.timings.receive += read_ms;
        const double t_done = ready_at + read_ms;
        finish[index] = t_done;
        ++result.cache_fresh_hits;
        complete_object(index, o, entry, ready_at, t_done);
        continue;
      }
      if (cache_outcome == CacheOutcome::kMiss) ++result.cache_misses;
    }
    const bool revalidate =
        cache_managed && cache_outcome == CacheOutcome::kStale;

    // Circuit breakers: a scope that has been failing consecutively is
    // not worth burning the page budget on. Non-root objects check the
    // origin breaker (and the CDN-provider breaker when CDN-served)
    // before fetching; a denial fails the entry fast, degrading the
    // load instead of quarantining the site. The root document always
    // goes through — without it there is nothing to degrade to.
    if (options.breakers != nullptr && index != 0) {
      const double at_s = clock_s(ready_at);
      const bool origin_ok =
          options.breakers->at("origin:" + o.host).allow(at_s);
      const bool cdn_ok =
          !o.via_cdn ||
          options.breakers->at("cdn:" + std::to_string(o.cdn_provider_id))
              .allow(at_s);
      if (!origin_ok || !cdn_ok) {
        entry.status = 0;
        entry.error = "breaker-open";
        entry.body_size = 0.0;
        ++result.breaker_denials;
        ++result.failed_objects;
        record_span(entry, ready_at, ready_at);
        result.har.entries.push_back(std::move(entry));
        continue;  // children were never discovered
      }
    }

    // Deadline-budget propagation: an object starting near the page
    // deadline gets only the remaining page budget, not the full
    // per-object allowance — stalled transfers can no longer drag one
    // object far past the watchdog line.
    const double object_budget_ms =
        options.deadline_budget
            ? std::min(options.object_timeout_ms,
                       std::max(0.0, options.page_timeout_ms - ready_at))
            : options.object_timeout_ms;

    double t = ready_at;
    net::FaultKind fate = net::FaultKind::kNone;
    bool warm_transfer = false;
    bool used_connection = false;
    const int max_attempts =
        (faulty || chaotic) ? 1 + std::max(0, options.max_object_retries) : 1;

    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      fate = net::FaultKind::kNone;
      used_connection = false;
      std::size_t conn_index = 0;
      warm_transfer = false;

      // DNS. Background faults strike first; an active resolver outage
      // window strikes lookups the base profile spared.
      if (!hs.dns_done) {
        net::FaultKind dns_fate = net::FaultKind::kNone;
        if (faulty) dns_fate = options.faults->dns_fault();
        if (dns_fate == net::FaultKind::kNone && chaotic)
          dns_fate = options.chaos->dns_fault(clock_s(t), o.host);
        if (dns_fate == net::FaultKind::kDnsServfail) {
          entry.timings.dns += kDnsServfailMs;
          t += kDnsServfailMs;
          fate = dns_fate;
        } else if (dns_fate == net::FaultKind::kDnsTimeout) {
          entry.timings.dns += kDnsTimeoutMs;
          t += kDnsTimeoutMs;
          fate = dns_fate;
        }
        if (fate == net::FaultKind::kNone) {
          const double query_time_s = options.start_time_s + t / 1000.0;
          auto lookup =
              env_.doh != nullptr
                  ? env_.doh->resolve(dns_record_for(o), query_time_s, rng)
                  : env_.resolver->resolve(dns_record_for(o), query_time_s,
                                           rng);
          if (options.hedge_dns && lookup.latency_ms > kDnsHedgeDelayMs) {
            // Hedged lookup: a second query goes out once the primary
            // has been out for the P95 delay; the first answer wins.
            // The primary's walk has warmed the resolver by then, so
            // the hedge usually answers fast and caps the tail near
            // kDnsHedgeDelayMs. Both draws come from the load's own
            // keyed stream — deterministic for any --jobs and resume.
            const auto hedged =
                env_.doh != nullptr
                    ? env_.doh->resolve(dns_record_for(o), query_time_s, rng)
                    : env_.resolver->resolve(dns_record_for(o), query_time_s,
                                             rng);
            ++result.dns_hedges;
            const double hedged_ms = kDnsHedgeDelayMs + hedged.latency_ms;
            if (hedged_ms < lookup.latency_ms) {
              lookup.latency_ms = hedged_ms;
              ++result.dns_hedge_wins;
            }
          }
          entry.timings.dns += lookup.latency_ms;
          t += lookup.latency_ms;
          hs.dns_done = true;
          // The OS resolver cache outlives this page: a later page in
          // the same session skips the lookup until the record's TTL
          // runs out. The TTL is a pure hash of the host (see
          // dns_record_for), so no draw happens here.
          if (session != nullptr)
            session->dns_expiry_s[o.host] =
                query_time_s + dns_record_for(o).ttl_s;
          ++result.dns_lookups;
          result.dns_time_ms += lookup.latency_ms;
        }
      }

      // Connection.
      const bool https = o.is_https();
      net::TransportProtocol transport =
          https ? base_transport : net::TransportProtocol::kCleartextHttp;
      if (options.transport_override) transport = *options.transport_override;
      const bool h2 = page.http2 && https;
      const std::size_t cap = options.reuse_connections ? (h2 ? 1u : 6u) : ~0u;

      if (fate == net::FaultKind::kNone) {
        if (!options.reuse_connections || hs.connection_free.empty() ||
            (!h2 && hs.connection_free.size() < cap &&
             *std::min_element(hs.connection_free.begin(),
                               hs.connection_free.end()) > t)) {
          // Open a fresh connection.
          const bool tls_handshake =
              transport != net::TransportProtocol::kCleartextHttp;
          net::FaultKind connect_fate = net::FaultKind::kNone;
          if (faulty) connect_fate = options.faults->connect_fault(tls_handshake);
          if (connect_fate == net::FaultKind::kNone && chaotic)
            connect_fate =
                options.chaos->connect_fault(clock_s(t), o.host, tls_handshake,
                                             o.via_cdn, o.cdn_provider_id);
          if (connect_fate == net::FaultKind::kConnectionReset) {
            // SYN out, RST back: one round trip burned, no connection.
            entry.timings.connect += hs.rtt_ms;
            t += hs.rtt_ms;
            fate = connect_fate;
          } else if (connect_fate == net::FaultKind::kTlsFailure) {
            // TCP connects, the TLS handshake dies one round trip in.
            entry.timings.connect += hs.rtt_ms;
            entry.timings.ssl += hs.rtt_ms;
            t += 2.0 * hs.rtt_ms;
            fate = connect_fate;
          }
          if (fate == net::FaultKind::kNone) {
            const auto cost = net::handshake_cost(transport, hs.session_seen);
            const double hs_time = cost.round_trips * hs.rtt_ms + cost.cpu_ms;
            // Split round trips into TCP (1) and TLS (rest) for the HAR.
            const double connect_ms = std::min(1, cost.round_trips) * hs.rtt_ms;
            entry.timings.connect += connect_ms;
            entry.timings.ssl += hs_time - connect_ms;
            t += hs_time;
            hs.connection_free.push_back(t);
            conn_index = hs.connection_free.size() - 1;
            hs.session_seen = true;
            ++result.handshakes;
            result.handshake_time_ms += hs_time;
            used_connection = true;
          }
        } else {
          // Reuse: pick the earliest-free connection; block if it is busy.
          conn_index = static_cast<std::size_t>(
              std::min_element(hs.connection_free.begin(),
                               hs.connection_free.end()) -
              hs.connection_free.begin());
          if (!h2 && hs.connection_free[conn_index] > t) {
            entry.timings.blocked += hs.connection_free[conn_index] - t;
            t = hs.connection_free[conn_index];
          }
          warm_transfer = true;
          used_connection = true;
        }
      }

      if (fate == net::FaultKind::kNone) {
        // Send: the request travels to the server (half a round trip).
        entry.timings.send += 0.5 * hs.rtt_ms;
        t += 0.5 * hs.rtt_ms;

        if (faulty) fate = options.faults->response_fault();
        if (fate == net::FaultKind::kNone && chaotic)
          fate = options.chaos->response_fault(clock_s(t), o.host, o.via_cdn,
                                               o.cdn_provider_id);
        if (fate == net::FaultKind::kHttp5xx) {
          // The request reached the server; an error page came straight
          // back after origin think time, with no usable body. The
          // cache hierarchy never admits it.
          const double error_wait = 0.5 * hs.rtt_ms + o.origin_think_ms;
          entry.timings.wait += error_wait;
          t += error_wait;
          if (!h2 && used_connection) hs.connection_free[conn_index] = t;
        } else {
          // Server wait (CDN hierarchy or origin) + response propagation.
          cdn::CdnRequest request;
          request.url = o.url;
          request.size_bytes = o.size_bytes;
          request.request_rate = options.model_cdn_warmth ? o.request_rate : 0.0;
          request.cacheable = o.cacheable;
          request.client = env_.vantage;
          request.origin = o.origin_region;
          cdn::CdnResponse response;
          if (o.via_cdn) {
            response = env_.cdn->serve(env_.registry->provider(o.cdn_provider_id),
                                       request, rng);
            const auto& provider = env_.registry->provider(o.cdn_provider_id);
            if (!provider.header_signature.empty())
              entry.response_headers.push_back(provider.header_signature +
                                               ": present");
            if (!response.x_cache.empty()) {
              entry.x_cache = response.x_cache;
              entry.response_headers.push_back("x-cache: " + response.x_cache);
              if (response.x_cache == "HIT")
                ++result.x_cache_hits;
              else
                ++result.x_cache_misses;
            }
          } else {
            request.origin = o.origin_region;
            response = env_.cdn->serve_from_origin(request, rng);
            response.wait_ms = o.origin_think_ms +
                               0.3 * env_.latency->rtt(o.origin_region,
                                                       o.origin_region, rng);
          }
          // Wait: server think time plus the response's return leg.
          entry.timings.wait += 0.5 * hs.rtt_ms + response.wait_ms;
          t += 0.5 * hs.rtt_ms + response.wait_ms;

          // Receive: slow-start rounds + serialization — unless the
          // transfer stalls out or the connection dies mid-body.
          net::FaultKind transfer_fate =
              faulty ? options.faults->transfer_fault() : net::FaultKind::kNone;
          bool chaos_transfer = false;
          if (transfer_fate == net::FaultKind::kNone && chaotic) {
            transfer_fate = options.chaos->transfer_fault(
                clock_s(t), o.host, o.via_cdn, o.cdn_provider_id);
            chaos_transfer = transfer_fate != net::FaultKind::kNone;
          }
          if (transfer_fate == net::FaultKind::kStalledTransfer) {
            // The body hangs; the browser abandons the object once its
            // fetch budget is burned.
            const double give_up =
                std::max(0.0, object_budget_ms - (t - ready_at));
            entry.timings.receive += give_up;
            entry.body_size = 0.0;
            t += give_up;
            fate = transfer_fate;
          } else if (transfer_fate == net::FaultKind::kTruncatedTransfer) {
            // A chaos-struck truncation has no FaultInjector to draw
            // the surviving fraction from; the load's own stream is
            // just as deterministic.
            const double fraction = chaos_transfer
                                        ? rng.uniform(0.05, 0.95)
                                        : options.faults->truncated_fraction();
            const double bytes = o.size_bytes * fraction;
            const double rounds = transfer_rounds(bytes, warm_transfer);
            const double receive_ms =
                rounds * hs.rtt_ms * 0.8 + env_.latency->transfer_ms(bytes);
            entry.timings.receive += receive_ms;
            entry.body_size = bytes;  // the partial body did arrive
            t += receive_ms;
            fate = transfer_fate;
          } else {
            // A revalidation answered 304: only headers crossed the
            // wire; the body the renderer gets (entry.body_size) is the
            // cached one.
            const double wire_bytes =
                revalidate ? kRevalidateBytes : o.size_bytes;
            const double rounds = transfer_rounds(wire_bytes, warm_transfer);
            const double receive_ms = rounds * hs.rtt_ms * 0.8 +
                                      env_.latency->transfer_ms(wire_bytes);
            entry.timings.receive += receive_ms;
            t += receive_ms;
          }
          if (!h2 && used_connection) hs.connection_free[conn_index] = t;
        }
      }

      if (fate == net::FaultKind::kNone) break;  // attempt succeeded

      // Failed attempt: bounded retry with exponential backoff, unless
      // the object's fetch budget is already burned. exp2 on a clamped
      // double replaces the old `1 << attempt`, whose shift is
      // undefined behaviour once --max-retries pushes attempt >= 31;
      // the ceiling bounds the pause either way.
      if (attempt + 1 < max_attempts && (t - ready_at) < object_budget_ms) {
        const double backoff =
            std::min(kMaxObjectBackoffMs,
                     kObjectRetryBackoffMs *
                         std::exp2(static_cast<double>(std::min(attempt, 62))));
        entry.timings.blocked += backoff;
        t += backoff;
        ++result.object_retries;
        continue;
      }
      break;  // out of retries or budget: the object failed for good
    }

    finish[index] = t;

    // Breaker feedback: the final verdict of this object (after its
    // retries) teaches the scope's breakers. Root objects bypass the
    // admission gate above but still report — an origin that cannot
    // even serve its document should trip fast.
    if (options.breakers != nullptr) {
      const double at_s = clock_s(t);
      net::CircuitBreaker& origin_breaker =
          options.breakers->at("origin:" + o.host);
      if (fate != net::FaultKind::kNone)
        origin_breaker.record_failure(at_s);
      else
        origin_breaker.record_success(at_s);
      if (o.via_cdn) {
        net::CircuitBreaker& cdn_breaker =
            options.breakers->at("cdn:" + std::to_string(o.cdn_provider_id));
        if (fate != net::FaultKind::kNone)
          cdn_breaker.record_failure(at_s);
        else
          cdn_breaker.record_success(at_s);
      }
    }

    if (fate != net::FaultKind::kNone) {
      entry.status = fate == net::FaultKind::kHttp5xx ? 503 : 0;
      entry.error = std::string(net::to_string(fate));
      if (fate != net::FaultKind::kTruncatedTransfer) entry.body_size = 0.0;
      ++result.failed_objects;
      if (index == 0) {
        // The root document never arrived: the navigation failed and
        // nothing below it exists. Return the partial (one-entry) HAR.
        result.status = LoadStatus::kFailed;
        result.root_failure = fate;
        record_span(entry, ready_at, t);
        result.har.entries.push_back(std::move(entry));
        result.on_load_ms = t;
        result.har.nav.on_load_ms = t;
        return result;
      }
      record_span(entry, ready_at, t);
      result.har.entries.push_back(std::move(entry));
      continue;  // children were never discovered
    }

    if (session != nullptr) {
      // The fetch ended cleanly: renew the stale entry (the 304 path)
      // or admit the freshly fetched body, and stamp the origin's
      // keep-alive clock so the session's next page can start with a
      // warm connection.
      if (cache_managed) {
        if (revalidate) {
          session->cache.revalidated(o.cache_key, clock_s(t),
                                     o.freshness_lifetime_s);
          ++result.cache_revalidations;
        } else {
          session->cache.insert(o.cache_key,
                                static_cast<std::size_t>(o.size_bytes),
                                clock_s(t), o.freshness_lifetime_s);
        }
      }
      if (used_connection) {
        double& last_used_s = session->origin_last_used_s[o.host];
        last_used_s = std::max(last_used_s, clock_s(t));
      }
    }

    complete_object(index, o, entry, ready_at, t);
  }

  if (result.failed_objects > 0 || result.watchdog_abort)
    result.status = LoadStatus::kDegraded;

  result.on_load_ms = *std::max_element(finish.begin(), finish.end());
  result.plt_ms =
      first_paint_gate + blocking_main_thread_ms + rng.uniform(10.0, 40.0);
  result.speed_index_ms =
      speed_index_ms(std::move(paint_events), result.plt_ms);
  result.har.nav.first_paint_ms = result.plt_ms;
  result.har.nav.on_load_ms = result.on_load_ms;
  return result;
}

}  // namespace hispar::browser
