#include "browser/qoe.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "web/mime.h"

namespace hispar::browser {

QoeMetrics qoe_metrics(const web::WebPage& page, const LoadResult& result) {
  if (result.har.entries.size() != page.objects.size())
    throw std::invalid_argument("qoe_metrics: load result does not match page");

  std::unordered_map<std::string, const HarEntry*> by_url;
  for (const auto& entry : result.har.entries) by_url[entry.url] = &entry;

  QoeMetrics metrics;
  metrics.first_paint_ms = result.plt_ms;

  // Visual completeness timeline: (paint time, visual weight).
  std::vector<std::pair<double, double>> paints;
  double total_weight = 0.0;
  double js_cost_ms = 0.0;
  for (const auto& object : page.objects) {
    const HarEntry* entry = by_url.at(object.url);
    if (web::is_visual(object.mime)) {
      const double at = std::max(entry->finished_at_ms(), result.plt_ms);
      paints.emplace_back(at, object.size_bytes);
      total_weight += object.size_bytes;
    }
    if (object.mime == web::MimeCategory::kJavaScript) {
      // Parse + compile + execute, serialized on the main thread; async
      // scripts still occupy it, just later.
      js_cost_ms += 3.0 + object.size_bytes * 2.5e-4;
    }
  }

  if (total_weight <= 0.0) {
    metrics.visual_complete_90_ms = result.plt_ms;
    metrics.visual_complete_ms = result.plt_ms;
  } else {
    std::sort(paints.begin(), paints.end());
    double cumulative = 0.0;
    metrics.visual_complete_ms = paints.back().first;
    metrics.visual_complete_90_ms = paints.back().first;
    for (const auto& [at, weight] : paints) {
      cumulative += weight;
      if (cumulative >= 0.9 * total_weight) {
        metrics.visual_complete_90_ms = at;
        break;
      }
    }
  }

  metrics.time_to_interactive_ms = result.plt_ms + js_cost_ms;
  return metrics;
}

}  // namespace hispar::browser
