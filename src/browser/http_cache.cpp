#include "browser/http_cache.h"

namespace hispar::browser {

CacheOutcome HttpCache::lookup(const std::string& key, double now_s) {
  ++stats_.lookups;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return CacheOutcome::kMiss;
  }
  if (now_s < it->second->expires_s) {
    ++stats_.fresh_hits;
    order_.splice(order_.begin(), order_, it->second);
    return CacheOutcome::kFresh;
  }
  return CacheOutcome::kStale;
}

void HttpCache::insert(const std::string& key, std::size_t size_bytes,
                       double now_s, double freshness_lifetime_s) {
  if (size_bytes > capacity_) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      used_ -= it->second->size;
      order_.erase(it->second);
      index_.erase(it);
      ++stats_.evictions;
    }
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    used_ -= it->second->size;
    it->second->size = size_bytes;
    it->second->expires_s = now_s + freshness_lifetime_s;
    used_ += size_bytes;
    order_.splice(order_.begin(), order_, it->second);
  } else {
    order_.push_front(Entry{key, size_bytes, now_s + freshness_lifetime_s});
    index_[key] = order_.begin();
    used_ += size_bytes;
    ++stats_.insertions;
  }
  while (used_ > capacity_) evict_one();
}

void HttpCache::revalidated(const std::string& key, double now_s,
                            double freshness_lifetime_s) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  ++stats_.revalidations;
  it->second->expires_s = now_s + freshness_lifetime_s;
  order_.splice(order_.begin(), order_, it->second);
}

void HttpCache::evict_one() {
  const Entry& victim = order_.back();
  used_ -= victim.size;
  index_.erase(victim.key);
  order_.pop_back();
  ++stats_.evictions;
}

}  // namespace hispar::browser
