// The page-load simulator ("the browser").
//
// Replaces the paper's automated Firefox 74 (§3.1). Given a WebPage and
// the network substrate, it schedules every object fetch through DNS,
// the per-origin connection pool, the CDN hierarchy and a
// slow-start-aware transfer model, and emits:
//  * a HAR log with the seven per-entry phases the paper analyzes
//    (blocked, dns, connect, ssl, send, wait, receive — §5.6),
//  * Navigation Timing (navigationStart -> firstPaint = the paper's PLT
//    definition, §4),
//  * SpeedIndex (§4),
//  * handshake counts/times (§5.6).
//
// Loads are cold-cache (§3.1: "fetched each page with an empty cache and
// new user profile"); the shared DNS resolver and CDN state persist
// across loads, as in the real world.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "browser/har.h"
#include "browser/http_cache.h"
#include "cdn/hierarchy.h"
#include "net/connection.h"
#include "net/dns.h"
#include "net/doh.h"
#include "net/faults.h"
#include "net/outage.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "web/page.h"

namespace hispar::browser {

struct LoaderEnv {
  const net::LatencyModel* latency = nullptr;
  const cdn::CdnRegistry* registry = nullptr;
  cdn::CdnHierarchy* cdn = nullptr;
  net::CachingResolver* resolver = nullptr;
  net::Region vantage = net::Region::kNorthAmerica;
  // Shard-local telemetry sinks; default (all-null) disables
  // instrumentation at the cost of one pointer test per site.
  // Observability never draws from `rng` and never moves `t`, so a
  // load's simulated results are identical with or without it.
  obs::ShardObs obs{};
  // DNS-over-HTTPS wrapper around `resolver`. When set, every lookup
  // routes through it (paying the DoH connection/query overheads) and
  // each load opens a fresh DoH session — the cold-profile browser of
  // §3.1 does not reuse the previous page's DoH connection. Null keeps
  // plain resolver lookups (historical behaviour).
  net::DohResolver* doh = nullptr;
  // Pin CDN-served objects to one edge region regardless of proximity.
  // Must agree with the CdnHierarchy's own edge_pin so the RTT the
  // client pays and the cache the request lands in describe the same
  // PoP; MeasurementCampaign wires both from one config field.
  std::optional<net::Region> edge_pin;
};

struct LoadOptions {
  // Simulated wall-clock start of this load (seconds); advances DNS TTL
  // expiry across a measurement campaign.
  double start_time_s = 0.0;
  // Ablation switches (bench_ablation): each disables one mechanism the
  // landing/internal PLT gap is built from.
  bool use_resource_hints = true;
  bool model_cdn_warmth = true;
  bool reuse_connections = true;
  std::optional<net::TransportProtocol> transport_override;
  // Fault injection. Null models the perfectly reliable substrate: all
  // retry/timeout/watchdog machinery below is inert, so fault-free loads
  // are bit-identical to loads on a loader without this feature. The
  // injector is mutated (its stream advances per decision); the caller
  // provides one per load attempt, keyed as net/faults.h documents.
  net::FaultInjector* faults = nullptr;
  // Correlated-outage oracle (net/outage.h). Null models a substrate
  // with no incident windows; like `faults`, the null case is a true
  // no-op — no branch consumes extra randomness — so chaos-free loads
  // are bit-identical to loads on a loader without this feature. The
  // caller provides one injector per load attempt, keyed like `faults`.
  net::ChaosInjector* chaos = nullptr;
  // Defense layer (inert when null/false; campaigns enable it together
  // with chaos so defended and historical fault-only runs never mix):
  //  * breakers: per-shard circuit breakers consulted before every
  //    non-root object fetch ("origin:<host>" and, for CDN-served
  //    objects, "cdn:<provider>"); a denied fetch fails fast with a
  //    "breaker-open" HAR entry and degrades the load instead of
  //    burning its budget against a known-bad scope.
  //  * hedge_dns: fire a second resolver query at a deterministic P95
  //    delay when the primary lookup runs long; first answer wins.
  //  * deadline_budget: propagate the page watchdog budget into each
  //    object's fetch budget (an object starting near the deadline gets
  //    only the remaining time, not the full object_timeout_ms).
  net::BreakerSet* breakers = nullptr;
  bool hedge_dns = false;
  bool deadline_budget = false;
  // Browsing-session client state (http_cache.h): the private HTTP
  // cache, warm DNS answers and per-origin keep-alive a session threads
  // across its page loads. Null models the paper's cold profile (§3.1)
  // and is a true no-op — no branch draws randomness or moves `t` — so
  // sessions-off loads are bit-identical to loads on a loader without
  // this feature. The pointee is mutated (entries admitted/renewed,
  // expiries recorded); the caller owns it across the session's pages.
  SessionState* session = nullptr;
  // Per-object bounded retry with exponential backoff (browsers retry
  // transient network errors a couple of times before surfacing them).
  int max_object_retries = 2;
  // Per-object fetch budget: once an object has burned this long across
  // attempts, the browser gives up on it.
  double object_timeout_ms = 15000.0;
  // Page-level watchdog (Firefox-style load abort): object fetches that
  // would start after this deadline never happen.
  double page_timeout_ms = 60000.0;
};

// How a page load ended.
//  kOk       — every object fetched cleanly;
//  kDegraded — the page painted but some objects failed or the watchdog
//              cut the load short (the HAR is partial);
//  kFailed   — the root document never arrived; nothing was measured.
enum class LoadStatus : std::uint8_t { kOk, kDegraded, kFailed };

std::string_view to_string(LoadStatus status);

struct LoadResult {
  HarLog har;
  double plt_ms = 0.0;  // navigationStart -> firstPaint (paper's PLT)
  double on_load_ms = 0.0;
  double speed_index_ms = 0.0;
  int handshakes = 0;
  double handshake_time_ms = 0.0;
  int dns_lookups = 0;
  double dns_time_ms = 0.0;
  int x_cache_hits = 0;
  int x_cache_misses = 0;
  // Failure accounting (all defaults describe a clean load on a
  // reliable substrate).
  LoadStatus status = LoadStatus::kOk;
  net::FaultKind root_failure = net::FaultKind::kNone;  // cause when kFailed
  int failed_objects = 0;   // entries that never completed
  int object_retries = 0;   // in-load re-attempts that were needed
  bool watchdog_abort = false;
  // Defense-layer accounting (all zero unless LoadOptions enables the
  // corresponding defense).
  int breaker_denials = 0;  // fetches an open breaker failed fast
  int dns_hedges = 0;       // hedged lookups fired
  int dns_hedge_wins = 0;   // hedges that beat the primary answer
  // Browser-cache accounting (all zero unless LoadOptions.session is
  // set). Fresh hits were served locally with no network activity;
  // revalidations moved only headers (304-style); misses fetched and
  // then admitted the body.
  int cache_fresh_hits = 0;
  int cache_revalidations = 0;
  int cache_misses = 0;
};

class PageLoader {
 public:
  explicit PageLoader(LoaderEnv env);
  ~PageLoader();
  PageLoader(const PageLoader&) = delete;
  PageLoader& operator=(const PageLoader&) = delete;

  // `rng` is taken by value: a load consumes randomness; repeat loads of
  // the same page should pass freshly forked streams. A load's simulated
  // result never depends on previous loads through this object — all
  // simulation state lives behind the env's cdn/resolver pointers — but
  // load() reuses internal scratch buffers across calls, so one
  // PageLoader must not run two loads concurrently. Owners already keep
  // one loader per worker (see LoaderEnv).
  LoadResult load(const web::WebPage& page, util::Rng rng,
                  const LoadOptions& options = {}) const;

 private:
  LoaderEnv env_;
  // Resolved once at construction; null when observability is off.
  obs::Histogram* wait_hist_ = nullptr;
  // Per-load schedule/host buffers, pooled across loads (a campaign is
  // tens of thousands of loads; reallocating them per load showed up in
  // profiles). Mutable because reuse is invisible in load()'s results.
  struct Scratch;
  mutable std::unique_ptr<Scratch> scratch_;
};

}  // namespace hispar::browser
