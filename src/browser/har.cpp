#include "browser/har.h"

#include <set>
#include <sstream>

namespace hispar::browser {

double HarLog::total_bytes() const {
  double sum = 0.0;
  for (const auto& e : entries) sum += e.body_size;
  return sum;
}

std::size_t HarLog::unique_domains() const {
  std::set<std::string> hosts;
  for (const auto& e : entries) hosts.insert(e.host);
  return hosts.size();
}

bool HarLog::has_mixed_content() const {
  if (entries.empty() || entries.front().scheme != util::Scheme::kHttps)
    return false;
  for (std::size_t i = 1; i < entries.size(); ++i)
    if (entries[i].scheme == util::Scheme::kHttp) return true;
  return false;
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}
}  // namespace

std::string to_har_json(const HarLog& log) {
  std::ostringstream os;
  os << "{\"log\":{\"version\":\"1.2\",\"creator\":{\"name\":\"hispar-sim\","
        "\"version\":\"1.0\"},\"pages\":[{\"id\":\"page_1\",\"title\":\""
     << json_escape(log.page_url) << "\",\"pageTimings\":{\"onLoad\":"
     << log.nav.on_load_ms << ",\"_firstPaint\":" << log.nav.first_paint_ms
     << "}}],\"entries\":[";
  for (std::size_t i = 0; i < log.entries.size(); ++i) {
    const HarEntry& e = log.entries[i];
    if (i) os << ',';
    os << "{\"pageref\":\"page_1\",\"startedDateTime\":\"" << e.started_at_ms
       << "\",\"request\":{\"method\":\"" << e.request_method
       << "\",\"url\":\"" << json_escape(e.url)
       << "\"},\"response\":{\"status\":" << e.status;
    if (!e.error.empty()) os << ",\"_error\":\"" << json_escape(e.error) << '"';
    os << ",\"content\":{\"size\":" << e.body_size << ",\"mimeType\":\""
       << json_escape(e.mime_type) << "\"},\"headers\":[";
    for (std::size_t h = 0; h < e.response_headers.size(); ++h) {
      if (h) os << ',';
      const auto& header = e.response_headers[h];
      const auto colon = header.find(':');
      const std::string name = header.substr(0, colon);
      const std::string value =
          colon == std::string::npos
              ? ""
              : header.substr(header.find_first_not_of(' ', colon + 1));
      os << "{\"name\":\"" << json_escape(name) << "\",\"value\":\""
         << json_escape(value) << "\"}";
    }
    os << "]},\"timings\":{\"blocked\":" << e.timings.blocked
       << ",\"dns\":" << e.timings.dns << ",\"connect\":" << e.timings.connect
       << ",\"ssl\":" << e.timings.ssl << ",\"send\":" << e.timings.send
       << ",\"wait\":" << e.timings.wait
       << ",\"receive\":" << e.timings.receive << "}}";
  }
  os << "]}}";
  return os.str();
}

}  // namespace hispar::browser
