// EasyList-style ad/tracker request matcher.
//
// §6.3: "To detect advertisement and tracking related requests, we used
// the Brave Browser Adblock library coupled with Easylist... We counted
// all HTTP requests on a web page that would have been blocked." This is
// a filter-list matcher over request URLs: it knows nothing about the
// generator's ground-truth flags, mirroring how a real ad-blocker
// classifies purely from URL patterns.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "browser/har.h"

namespace hispar::browser {

class AdBlocker {
 public:
  // The bundled filter list: domain-anchor and path patterns covering
  // the curated third-party head plus the synthetic tail's naming
  // conventions (pixel./ads./bid./metrics. hosts, /track/ paths).
  static AdBlocker easylist_lite();

  explicit AdBlocker(std::vector<std::string> patterns);

  // True if a request to `url` would be blocked.
  bool matches(std::string_view url) const;

  // Number of entries in `log` that the filter list blocks (the paper's
  // "tracking requests" count).
  std::size_t count_blocked(const HarLog& log) const;

  std::size_t pattern_count() const { return patterns_.size(); }

 private:
  std::vector<std::string> patterns_;  // glob patterns over full URLs
};

}  // namespace hispar::browser
