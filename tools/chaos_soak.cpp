// chaos_soak — deterministic soak harness for the chaos engine.
//
// Drives the measurement campaign through an escalating sequence of
// --chaos-profile stages (no chaos, one origin incident, a Markov
// resolver flake, a two-provider CDN storm, then everything at once)
// and asserts, per stage, the invariants the chaos engine promises:
//
//  * watchdog    — every campaign run finishes within --watchdog-s of
//                  wall clock (a hang is reported and the process hard
//                  exits, so CI cannot wedge);
//  * clocks      — every shard's final virtual clock is finite and
//                  non-negative, and no artifact contains nan/inf;
//  * breakers    — checkpointed circuit-breaker records are legal
//                  (denials only while open, non-closed states imply an
//                  opening, no negative counters);
//  * determinism — --jobs 1 and --jobs 8 produce byte-identical
//                  metrics CSV and run report, and the same checkpoint
//                  content (shard blocks are appended in completion
//                  order, so they are compared sorted); a second
//                  --jobs 1 run reproduces the same bytes; and a
//                  torn-tail checkpoint (simulated kill) resumes to
//                  the same bytes, rewriting the same checkpoint.
//
// The stage results are written as a JSON invariant report
// (--report FILE) for CI artifact upload. Exit status: 0 when every
// invariant held, 1 on any violation, 2 on a watchdog hang.
//
// Scale flags (--universe/--sites/--loads/--stages) exist so sanitizer
// CI can run a reduced soak; defaults are the full local soak.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/hispar.h"
#include "core/measurement.h"
#include "core/serialization.h"
#include "net/outage.h"
#include "obs/json.h"
#include "obs/report.h"
#include "search/engine.h"
#include "toplist/providers.h"
#include "util/args.h"
#include "util/rng.h"
#include "web/generator.h"

namespace {

using namespace hispar;

struct Stage {
  std::string name;
  std::string profile;  // OutageSchedule spec ("" = empty schedule)
};

struct StageResult {
  std::string name;
  std::string profile;
  int runs = 0;
  std::vector<std::string> violations;
};

// Everything one campaign run produces that the invariants inspect.
struct RunArtifacts {
  std::string csv;
  std::string report;
  std::string checkpoint;
  std::vector<std::pair<std::string, double>> clock_gauges;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Runs `fn` on a worker thread and waits up to `seconds` of wall
// clock. A campaign that outlives the watchdog is exactly the hang the
// soak exists to catch: report, flush, and hard-exit (the worker
// cannot be joined).
void write_report_file(const std::string& path,
                       const std::vector<StageResult>& stages);

class Watchdog {
 public:
  Watchdog(double seconds, std::string report_path,
           const std::vector<StageResult>* stages)
      : seconds_(seconds),
        report_path_(std::move(report_path)),
        stages_(stages) {}

  template <typename F>
  void run(const std::string& what, F&& fn) {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
    std::thread worker([&] {
      try {
        fn();
      } catch (...) {
        error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex);
        done = true;
      }
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mutex);
    if (!cv.wait_for(lock, std::chrono::duration<double>(seconds_),
                     [&] { return done; })) {
      worker.detach();
      std::cerr << "chaos_soak: WATCHDOG: " << what << " still running after "
                << seconds_ << " s\n";
      if (!report_path_.empty() && stages_ != nullptr)
        write_report_file(report_path_, *stages_);
      std::_Exit(2);
    }
    worker.join();
    if (error) std::rethrow_exception(error);
  }

 private:
  double seconds_;
  std::string report_path_;
  const std::vector<StageResult>* stages_;
};

RunArtifacts run_campaign(const web::SyntheticWeb& web,
                          const core::HisparList& list,
                          core::CampaignConfig config,
                          const std::string& checkpoint_path) {
  config.checkpoint_path = checkpoint_path;
  config.observability.enabled = true;
  core::MeasurementCampaign campaign(web, config);
  const auto sites = campaign.run(list);

  RunArtifacts artifacts;
  std::ostringstream csv;
  core::write_measure_csv(csv, sites);
  artifacts.csv = csv.str();
  std::ostringstream report;
  obs::write_report_json(
      report, core::build_run_report(sites, campaign.telemetry()));
  artifacts.report = report.str();
  artifacts.checkpoint = slurp(checkpoint_path);
  for (const auto& [name, value] : campaign.telemetry().metrics.gauges())
    if (name.size() > 12 &&
        name.compare(name.size() - 12, 12, ".clock_end_s") == 0)
      artifacts.clock_gauges.emplace_back(name, value);
  return artifacts;
}

void check_clocks(const RunArtifacts& run, const std::string& label,
                  StageResult& stage) {
  for (const auto& [name, value] : run.clock_gauges)
    if (!std::isfinite(value) || value < 0.0)
      stage.violations.push_back(label + ": virtual clock " + name +
                                 " is not finite and non-negative");
  for (const char* needle : {"nan", "inf"})
    if (run.csv.find(needle) != std::string::npos)
      stage.violations.push_back(label + ": metrics CSV contains '" +
                                 needle + "'");
}

void check_breakers(const RunArtifacts& run, const std::string& label,
                    bool chaos_enabled, StageResult& stage) {
  std::istringstream in(run.checkpoint);
  core::CampaignCheckpoint checkpoint;
  try {
    checkpoint = core::read_checkpoint(in);
  } catch (const std::exception& error) {
    stage.violations.push_back(label + ": checkpoint unreadable: " +
                               error.what());
    return;
  }
  if (!chaos_enabled && !checkpoint.breakers.empty())
    stage.violations.push_back(
        label + ": breaker records present without a chaos schedule");
  for (const auto& [shard, records] : checkpoint.breakers) {
    for (const auto& record : records) {
      const std::string where =
          label + ": shard " + std::to_string(shard) + " breaker '" +
          record.key + "'";
      if (record.consecutive_failures < 0)
        stage.violations.push_back(where + " has negative failure count");
      if (!std::isfinite(record.opened_at_s) || record.opened_at_s < 0.0)
        stage.violations.push_back(where + " has an illegal opened_at_s");
      // Denials are only dealt by an open breaker, and any non-closed
      // end state implies the breaker opened at least once.
      if (record.denials > 0 && record.times_opened == 0)
        stage.violations.push_back(where + " denied without ever opening");
      if (record.state != net::BreakerState::kClosed &&
          record.times_opened == 0)
        stage.violations.push_back(where +
                                   " is non-closed but never opened");
    }
  }
}

// Shard blocks are appended in completion order, which legitimately
// varies with --jobs (resume rewrites the file in shard-id order).
// Canonicalize by sorting the blocks before comparing, so the check
// covers content without tripping on append order.
std::string canonical_checkpoint(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::string line, header;
  std::vector<std::string> blocks;
  std::string current;
  while (std::getline(in, line)) {
    if (header.empty()) {
      header = line;
      continue;
    }
    current += line;
    current += '\n';
    if (line.rfind("endshard,", 0) == 0) {
      blocks.push_back(std::move(current));
      current.clear();
    }
  }
  std::sort(blocks.begin(), blocks.end());
  std::string out = header + '\n';
  for (const auto& block : blocks) out += block;
  out += current;  // torn tail, if any — must compare equal too
  return out;
}

void check_identical(const RunArtifacts& a, const RunArtifacts& b,
                     const std::string& what, StageResult& stage,
                     bool exact_checkpoint) {
  if (a.csv != b.csv)
    stage.violations.push_back(what + ": metrics CSV bytes differ");
  if (a.report != b.report)
    stage.violations.push_back(what + ": run report bytes differ");
  const bool checkpoints_match =
      exact_checkpoint
          ? a.checkpoint == b.checkpoint
          : canonical_checkpoint(a.checkpoint) ==
                canonical_checkpoint(b.checkpoint);
  if (!checkpoints_match)
    stage.violations.push_back(what + ": checkpoint bytes differ");
}

// Simulated kill: keep the header and the first completed shard block,
// then tear mid-record. read_checkpoint must discard the torn tail and
// the resumed campaign must rebuild byte-identical artifacts.
std::string torn_prefix(const std::string& checkpoint) {
  const std::size_t first_end = checkpoint.find("\nendshard,");
  if (first_end == std::string::npos) return checkpoint;
  const std::size_t block_end = checkpoint.find('\n', first_end + 1);
  if (block_end == std::string::npos) return checkpoint;
  // Keep one complete block plus half of the next block's first line.
  const std::size_t tear =
      std::min(checkpoint.size(), block_end + 1 + 30);
  return checkpoint.substr(0, tear);
}

void write_report_file(const std::string& path,
                       const std::vector<StageResult>& stages) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "chaos_soak: cannot write --report file: " << path << "\n";
    return;
  }
  std::size_t total = 0;
  for (const auto& stage : stages) total += stage.violations.size();
  out << "{\"schema\":\"hispar-chaos-soak-v1\",\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageResult& stage = stages[i];
    if (i) out << ',';
    out << "{\"name\":\"" << obs::json_escape(stage.name)
        << "\",\"profile\":\"" << obs::json_escape(stage.profile)
        << "\",\"runs\":" << stage.runs << ",\"violations\":[";
    for (std::size_t v = 0; v < stage.violations.size(); ++v) {
      if (v) out << ',';
      out << '"' << obs::json_escape(stage.violations[v]) << '"';
    }
    out << "]}";
  }
  out << "],\"total_violations\":" << total << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto args = util::Args::parse(argc, argv);
    const auto universe =
        static_cast<std::size_t>(args.get_int("universe", 900));
    const auto target_sites =
        static_cast<std::size_t>(args.get_int("sites", 48));
    const int loads = static_cast<int>(args.get_int("loads", 4));
    const double watchdog_s = args.get_double("watchdog-s", 120.0);
    const std::string report_path = args.get("report", "");
    const auto max_stages =
        static_cast<std::size_t>(args.get_int("stages", 99));

    // One small world shared by every stage.
    web::SyntheticWebConfig web_config;
    web_config.site_count = universe;
    web::SyntheticWeb web(web_config);
    toplist::TopListFactory toplists(web);
    search::SearchEngine engine(web);
    core::HisparBuilder builder(web, toplists, engine);
    core::HisparConfig list_config;
    list_config.name = "soak";
    list_config.target_sites = target_sites;
    list_config.urls_per_site = 8;
    list_config.min_internal_results = 3;
    const core::HisparList list = builder.build(list_config, /*week=*/0);
    if (list.sets.empty())
      throw std::runtime_error("chaos_soak: built an empty list");
    const std::string victim = list.sets.front().domain;

    const std::vector<Stage> all_stages = {
        {"baseline", ""},
        {"origin-incident",
         "origin:domain=" + victim +
             ",start_s=0,dur_s=600,kind=http_5xx,sev=0.9"},
        {"resolver-flake",
         "resolver:mtbf_s=240,mttr_s=60,kind=dns_timeout,sev=0.7"},
        {"cdn-storm",
         "cdn:provider=0,start_s=30,dur_s=600,kind=stall,sev=0.9;"
         "cdn:provider=1,mtbf_s=300,mttr_s=120,kind=connection_reset,"
         "sev=0.6"},
        {"everything",
         "origin:domain=" + victim +
             ",mtbf_s=200,mttr_s=100,kind=truncation,sev=0.8;"
             "resolver:mtbf_s=240,mttr_s=60,kind=dns_timeout,sev=0.7;"
             "cdn:provider=0,start_s=30,dur_s=600,kind=stall,sev=0.9;"
             "cdn:provider=1,mtbf_s=300,mttr_s=120,kind=connection_reset,"
             "sev=0.6"}};

    const std::string tmp =
        (std::filesystem::temp_directory_path() /
         ("chaos-soak-" + std::to_string(static_cast<unsigned>(
                              util::fnv1a(report_path) & 0xffffu))))
            .string();
    std::filesystem::create_directories(tmp);

    std::vector<StageResult> results;
    Watchdog watchdog(watchdog_s, report_path, &results);

    for (std::size_t s = 0; s < all_stages.size() && s < max_stages; ++s) {
      const Stage& spec = all_stages[s];
      StageResult stage;
      stage.name = spec.name;
      stage.profile = spec.profile;

      core::CampaignConfig config;
      config.landing_loads = loads;
      config.shards = 6;
      if (!spec.profile.empty())
        config.chaos = net::OutageSchedule::parse(spec.profile);

      const std::string cp = tmp + "/" + spec.name;
      const auto fresh = [&](const std::string& path) {
        std::filesystem::remove(path);
        return path;
      };

      RunArtifacts jobs1, jobs8, again, resumed;
      config.jobs = 1;
      watchdog.run(spec.name + " --jobs 1", [&] {
        jobs1 = run_campaign(web, list, config, fresh(cp + "-j1.ckpt"));
      });
      config.jobs = 8;
      watchdog.run(spec.name + " --jobs 8", [&] {
        jobs8 = run_campaign(web, list, config, fresh(cp + "-j8.ckpt"));
      });
      config.jobs = 1;
      watchdog.run(spec.name + " re-run", [&] {
        again = run_campaign(web, list, config, fresh(cp + "-again.ckpt"));
      });
      // Simulated kill + resume from a torn checkpoint tail.
      const std::string resume_path = fresh(cp + "-resume.ckpt");
      {
        std::ofstream torn(resume_path, std::ios::binary | std::ios::trunc);
        torn << torn_prefix(jobs1.checkpoint);
      }
      watchdog.run(spec.name + " resume", [&] {
        resumed = run_campaign(web, list, config, resume_path);
      });
      stage.runs = 4;

      check_clocks(jobs1, "jobs 1", stage);
      check_clocks(jobs8, "jobs 8", stage);
      check_breakers(jobs1, "jobs 1", !spec.profile.empty(), stage);
      check_breakers(jobs8, "jobs 8", !spec.profile.empty(), stage);
      check_identical(jobs1, jobs8, "jobs 1 vs jobs 8", stage,
                      /*exact_checkpoint=*/false);
      check_identical(jobs1, again, "re-run", stage,
                      /*exact_checkpoint=*/true);
      check_identical(jobs1, resumed, "kill + resume", stage,
                      /*exact_checkpoint=*/true);

      std::cout << "stage " << spec.name << ": " << stage.runs << " runs, "
                << stage.violations.size() << " violations\n";
      for (const auto& violation : stage.violations)
        std::cout << "  VIOLATION: " << violation << "\n";
      results.push_back(std::move(stage));
    }

    std::size_t total = 0;
    for (const auto& stage : results) total += stage.violations.size();
    if (!report_path.empty()) write_report_file(report_path, results);
    std::filesystem::remove_all(tmp);
    std::cout << "chaos_soak: " << results.size() << " stages, " << total
              << " violations\n";
    return total == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "chaos_soak: " << error.what() << "\n";
    return 1;
  }
}
