// hispar_fuzz: mutation fuzzer for every parser the artifacts flow
// through.
//
// Contract under test: each parser either succeeds or rejects cleanly
// with std::runtime_error / std::invalid_argument — never another
// exception type, never a crash, never UB (run the binary under
// ASan/UBSan; CI's fuzz-smoke job does). Grammar targets additionally
// check the parse/str round-trip on every accepted input, so a
// printing bug is a finding too.
//
// Each iteration derives a case seed from the master --seed (the same
// scheme as testkit::check, so one seed reproduces the whole run),
// picks a target, and feeds it either a mutated seed artifact or raw
// random bytes. Seed artifacts are built in-process through the repo's
// own writers; --corpus DIR adds committed files (matched to targets by
// filename prefix) to the seed pool, and --write-corpus DIR exports the
// built-in seeds, which is how tests/fuzz_corpus/ was generated.
//
// On a finding the input is minimized (testkit::minimize_bytes), saved
// next to the cwd, and a one-line replay recipe is printed; exit 1.
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <typeinfo>
#include <vector>

#include "core/serialization.h"
#include "net/faults.h"
#include "net/outage.h"
#include "net/vantage_profile.h"
#include "obs/json.h"
#include "testkit/gen.h"
#include "testkit/property.h"

namespace {

using hispar::testkit::Gen;

struct Target {
  std::string name;
  std::function<void(const std::string&)> parse;
  // For grammar targets: parse + re-print, so str() bugs surface.
  std::function<std::optional<std::string>(const std::string&)> roundtrip;
  std::vector<std::string> seeds;
};

enum class Outcome { kParsed, kCleanReject, kFinding };

Outcome feed(const Target& target, const std::string& input,
             std::string* message) {
  try {
    target.parse(input);
  } catch (const std::invalid_argument&) {
    return Outcome::kCleanReject;
  } catch (const std::runtime_error&) {
    return Outcome::kCleanReject;
  } catch (const std::exception& e) {
    *message = std::string("unclean rejection: ") + typeid(e).name() + ": " +
               e.what();
    return Outcome::kFinding;
  } catch (...) {
    *message = "unclean rejection: non-std exception";
    return Outcome::kFinding;
  }
  if (target.roundtrip) {
    try {
      if (auto violation = target.roundtrip(input)) {
        *message = *violation;
        return Outcome::kFinding;
      }
    } catch (const std::exception& e) {
      *message = std::string("round-trip of accepted input threw: ") +
                 e.what();
      return Outcome::kFinding;
    }
  }
  return Outcome::kParsed;
}

// --- Seed artifacts, built through the writers ---

hispar::core::SiteObservation seed_observation(std::size_t i) {
  hispar::core::SiteObservation obs;
  obs.domain = "site" + std::to_string(i) + ".example";
  obs.bootstrap_rank = i + 1;
  obs.landing.bytes = 120000.0 + 7.0 * static_cast<double>(i);
  obs.landing.objects = 42.0;
  obs.landing.plt_ms = 1234.5;
  obs.landing.wait_samples_ms = {1.5, 2.25};
  obs.landing.third_parties = {"cdn.example", "ads.example"};
  obs.internals.resize(2);
  obs.internals[0].bytes = 45000.0;
  obs.internals[1].plt_ms = 654.3;
  hispar::core::FetchOutcome outcome;
  outcome.page_index = 0;
  outcome.load_ordinal = 1;
  obs.outcomes = {outcome, outcome};
  return obs;
}

hispar::core::HisparList seed_list() {
  hispar::core::HisparList list;
  list.name = "Hseed";
  list.week = 3;
  for (std::size_t i = 0; i < 3; ++i) {
    hispar::core::UrlSet set;
    set.domain = "site" + std::to_string(i) + ".example";
    set.bootstrap_rank = i + 1;
    set.urls = {"https://" + set.domain + "/",
                "https://" + set.domain + "/p/1",
                "https://" + set.domain + "/p/2"};
    set.page_indices = {0, 1, 2};
    list.sets.push_back(std::move(set));
  }
  return list;
}

std::string seed_measure_checkpoint() {
  std::ostringstream out;
  hispar::core::write_checkpoint_header(out, 42);
  const std::vector<hispar::core::SiteObservation> observations = {
      seed_observation(0), seed_observation(1)};
  hispar::core::append_checkpoint_shard(out, 0, {0, 1}, observations);
  return out.str();
}

std::string seed_listbuild_checkpoint() {
  std::ostringstream out;
  hispar::core::write_listbuild_checkpoint_header(out, 42);
  hispar::core::ListBuildWeekRecord record;
  record.week = 0;
  record.list = seed_list();
  record.stats.week = 0;
  record.stats.sites_examined = 3;
  record.stats.sites_accepted = 3;
  record.stats.queries_billed = 9;
  hispar::core::append_listbuild_week(out, record);
  return out.str();
}

std::string seed_vantage_checkpoint() {
  std::ostringstream out;
  hispar::core::write_vantage_checkpoint_header(out, 42);
  const std::vector<hispar::core::SiteObservation> observations = {
      seed_observation(0), seed_observation(1)};
  hispar::core::append_vantage_block(out, 0, observations);
  return out.str();
}

std::string seed_session_checkpoint() {
  std::ostringstream out;
  hispar::core::write_session_checkpoint_header(out, 42);
  hispar::browser::CacheStats cache;
  cache.lookups = 10;
  cache.fresh_hits = 4;
  cache.misses = 6;
  cache.insertions = 6;
  hispar::core::append_session_block(out, 0, seed_observation(0), cache);
  return out.str();
}

std::string seed_json() {
  return R"({"schema":"hispar-metrics-v1","counters":{"loader.fetches":128,)"
         R"("dns.lookups":64},"gauges":{"shard.0.clock_s":1234.5},)"
         R"("hists":[{"name":"wait_ms","buckets":[1,2,3],"counts":[4,0,9]}],)"
         R"("note":"seed \"artifact\" with\nescapes","flags":[true,false,null]})";
}

std::vector<Target> make_targets() {
  namespace core = hispar::core;
  namespace net = hispar::net;
  std::vector<Target> targets;

  targets.push_back({"measure",
                     [](const std::string& s) {
                       std::istringstream in(s);
                       core::read_checkpoint(in);
                     },
                     nullptr,
                     {seed_measure_checkpoint()}});
  targets.push_back({"listbuild",
                     [](const std::string& s) {
                       std::istringstream in(s);
                       core::read_listbuild_checkpoint(in);
                     },
                     nullptr,
                     {seed_listbuild_checkpoint()}});
  targets.push_back({"vantage",
                     [](const std::string& s) {
                       std::istringstream in(s);
                       core::read_vantage_checkpoint(in);
                     },
                     nullptr,
                     {seed_vantage_checkpoint()}});
  targets.push_back({"session",
                     [](const std::string& s) {
                       std::istringstream in(s);
                       core::read_session_checkpoint(in);
                     },
                     nullptr,
                     {seed_session_checkpoint()}});
  targets.push_back({"listcsv",
                     [](const std::string& s) { core::from_csv(s); },
                     nullptr,
                     {core::to_csv(seed_list())}});
  targets.push_back({"json",
                     [](const std::string& s) { hispar::obs::parse_json(s); },
                     nullptr,
                     {seed_json()}});

  const auto grammar_roundtrip = [](auto parse) {
    return [parse](const std::string& s) -> std::optional<std::string> {
      const std::string printed = parse(s);
      const std::string reprinted = parse(printed);
      if (printed != reprinted)
        return "accepted spec '" + s + "' is not a str() fixpoint: '" +
               printed + "' reprints as '" + reprinted + "'";
      return std::nullopt;
    };
  };
  targets.push_back(
      {"faults",
       [](const std::string& s) { net::FaultProfile::parse(s); },
       grammar_roundtrip([](const std::string& s) {
         return net::FaultProfile::parse(s).str();
       }),
       {"none", "uniform:0.05", "http_5xx=0.1,stall=0.05,dns_timeout=0.01"}});
  targets.push_back(
      {"searchfaults",
       [](const std::string& s) { net::SearchFaultProfile::parse(s); },
       grammar_roundtrip([](const std::string& s) {
         return net::SearchFaultProfile::parse(s).str();
       }),
       {"none", "uniform:0.1", "query_timeout=0.05,rate_limited=0.02"}});
  targets.push_back(
      {"chaos",
       [](const std::string& s) { net::OutageSchedule::parse(s); },
       grammar_roundtrip([](const std::string& s) {
         return net::OutageSchedule::parse(s).str();
       }),
       {"none",
        "cdn:provider=2,kind=http_5xx,sev=0.9,start_s=120,dur_s=300",
        "resolver:kind=dns_timeout,sev=0.5,mtbf_s=60,mttr_s=10,horizon_s=900;"
        "origin:domain=news.example,kind=stall,sev=0.25,start_s=0,dur_s=60;"
        "search:kind=rate_limited,sev=1,mtbf_s=120,mttr_s=30"}});
  targets.push_back(
      {"vantagespec",
       [](const std::string& s) { net::VantageProfile::parse_list(s); },
       grammar_roundtrip([](const std::string& s) {
         const auto profiles = net::VantageProfile::parse_list(s);
         std::string printed;
         for (const auto& p : profiles) {
           if (!printed.empty()) printed += ';';
           printed += p.str();
         }
         return printed;
       }),
       {"default",
        "eu-1:region=eu:resolver=public:doh=1:access_ms=20:bandwidth=5000",
        "na-isp;as-edge:region=as:edge=na:faults=1.5"}});
  return targets;
}

void load_corpus(std::vector<Target>& targets, const std::string& dir) {
  std::size_t loaded = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string stem = entry.path().filename().string();
    for (Target& target : targets) {
      if (stem.rfind(target.name + "-", 0) != 0) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream bytes;
      bytes << in.rdbuf();
      target.seeds.push_back(bytes.str());
      ++loaded;
      break;
    }
  }
  std::cout << "loaded " << loaded << " corpus files from " << dir << "\n";
}

void write_corpus(const std::vector<Target>& targets, const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const Target& target : targets) {
    for (std::size_t i = 0; i < target.seeds.size(); ++i) {
      const std::string path =
          dir + "/" + target.name + "-" + std::to_string(i) + ".seed";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << target.seeds[i];
    }
  }
  std::cout << "wrote seed corpus to " << dir << "\n";
}

int usage() {
  std::cerr << "usage: hispar_fuzz [--iters N] [--seed S] [--target NAME]\n"
               "                   [--corpus DIR] [--write-corpus DIR]\n"
               "targets: measure listbuild vantage session listcsv json\n"
               "         faults searchfaults chaos vantagespec (default all)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  long long iters = 1000;
  std::uint64_t seed = 1;
  std::string only_target;
  std::string corpus_dir;
  std::string write_corpus_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "hispar_fuzz: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iters") {
      iters = std::stoll(value());
    } else if (arg == "--seed") {
      seed = std::stoull(value());
    } else if (arg == "--target") {
      only_target = value();
    } else if (arg == "--corpus") {
      corpus_dir = value();
    } else if (arg == "--write-corpus") {
      write_corpus_dir = value();
    } else {
      return usage();
    }
  }

  std::vector<Target> targets = make_targets();
  if (!write_corpus_dir.empty()) {
    write_corpus(targets, write_corpus_dir);
    return 0;
  }
  if (!corpus_dir.empty()) load_corpus(targets, corpus_dir);
  if (!only_target.empty()) {
    std::vector<Target> filtered;
    for (Target& target : targets)
      if (target.name == only_target) filtered.push_back(std::move(target));
    if (filtered.empty()) {
      std::cerr << "hispar_fuzz: unknown target '" << only_target << "'\n";
      return usage();
    }
    targets = std::move(filtered);
  }

  long long parsed = 0, rejected = 0;
  for (long long iter = 0; iter < iters; ++iter) {
    const std::uint64_t cseed = hispar::testkit::case_seed(seed, iter);
    // Ramp depth like the property runner: later iterations stack more
    // mutations per input.
    const int size =
        10 + static_cast<int>((50 * iter) / (iters > 1 ? iters - 1 : 1));
    Gen gen(cseed, size);
    Target& target = targets[gen.index(targets.size())];
    const std::string input =
        gen.chance(0.85)
            ? hispar::testkit::mutate(
                  gen, target.seeds[gen.index(target.seeds.size())])
            : hispar::testkit::gen_bytes(gen, 1 + gen.index(512));

    std::string message;
    const Outcome outcome = feed(target, input, &message);
    if (outcome == Outcome::kParsed) ++parsed;
    if (outcome == Outcome::kCleanReject) ++rejected;
    if (outcome != Outcome::kFinding) continue;

    const std::string minimized = hispar::testkit::minimize_bytes(
        input,
        [&](const std::string& candidate) {
          std::string ignored;
          return feed(target, candidate, &ignored) == Outcome::kFinding;
        },
        512);
    const std::string crash_path = "fuzz-finding-" + target.name + ".bin";
    std::ofstream out(crash_path, std::ios::binary | std::ios::trunc);
    out << minimized;
    out.close();
    std::cerr << "FINDING in target '" << target.name << "' at iteration "
              << iter << ": " << message << "\n"
              << "minimized input (" << minimized.size()
              << " bytes) written to " << crash_path << "\n"
              << "replay: hispar_fuzz --target " << target.name
              << " --seed " << seed << " --iters " << (iter + 1)
              << "   (case seed " << cseed << ", size " << size << ")\n";
    return 1;
  }
  std::cout << "hispar_fuzz: " << iters << " iterations over "
            << targets.size() << " targets, " << parsed << " parsed, "
            << rejected << " cleanly rejected, 0 findings\n";
  return 0;
}
