// bench_diff: compare two bench telemetry files (BENCH_*.json, the
// deterministic metrics-JSON schema obs::MetricsRegistry exports).
//
//   bench_diff BASELINE.json AFTER.json
//
// Prints one table row per gauge and counter present in either file.
// Gauges named *_ms or *_s are timings: the table adds a speedup
// column (baseline / after, so > 1.0 is faster). The tool is report-only — it
// exits 0 whatever the numbers say (CI uses it to annotate perf-smoke
// runs, not to gate them) and non-zero only for usage or parse errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/json.h"

namespace {

using hispar::obs::JsonValue;

JsonValue load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench_diff: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return hispar::obs::parse_json(buffer.str());
}

// Flattens a metrics-JSON section ("gauges" or "counters") into
// name -> value; missing or non-object sections yield an empty map.
std::map<std::string, double> section(const JsonValue& document,
                                      const char* name) {
  std::map<std::string, double> values;
  const JsonValue* object = document.find(name);
  if (object == nullptr || !object->is(JsonValue::Type::kObject))
    return values;
  for (const auto& [key, value] : object->object)
    if (value.is(JsonValue::Type::kNumber)) values[key] = value.number;
  return values;
}

bool ends_with(const std::string& name, const char* suffix) {
  const std::string s(suffix);
  return name.size() >= s.size() &&
         name.compare(name.size() - s.size(), s.size(), s) == 0;
}

void print_row(const std::string& name, bool base_has, double base,
               bool after_has, double after, bool timing) {
  char base_buf[32], after_buf[32], speed_buf[32];
  if (base_has)
    std::snprintf(base_buf, sizeof base_buf, "%14.3f", base);
  else
    std::snprintf(base_buf, sizeof base_buf, "%14s", "-");
  if (after_has)
    std::snprintf(after_buf, sizeof after_buf, "%14.3f", after);
  else
    std::snprintf(after_buf, sizeof after_buf, "%14s", "-");
  if (timing && base_has && after_has && after > 0.0)
    std::snprintf(speed_buf, sizeof speed_buf, "%8.2fx", base / after);
  else
    std::snprintf(speed_buf, sizeof speed_buf, "%9s", "");
  std::printf("  %-36s %s %s %s\n", name.c_str(), base_buf, after_buf,
              speed_buf);
}

void diff_section(const JsonValue& base_doc, const JsonValue& after_doc,
                  const char* name, bool timings) {
  const auto base = section(base_doc, name);
  const auto after = section(after_doc, name);
  if (base.empty() && after.empty()) return;
  std::set<std::string> names;
  for (const auto& [key, value] : base) names.insert(key);
  for (const auto& [key, value] : after) names.insert(key);
  std::printf("%s\n  %-36s %14s %14s %9s\n", name, "name", "baseline",
              "after", "speedup");
  for (const auto& key : names) {
    const auto b = base.find(key);
    const auto a = after.find(key);
    print_row(key, b != base.end(), b != base.end() ? b->second : 0.0,
              a != after.end(), a != after.end() ? a->second : 0.0,
              timings && (ends_with(key, "_ms") || ends_with(key, "_s")));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: bench_diff BASELINE.json AFTER.json\n";
    return 2;
  }
  try {
    const JsonValue base = load(argv[1]);
    const JsonValue after = load(argv[2]);
    std::printf("bench_diff: %s -> %s  (speedup = baseline/after, "
                ">1 is faster)\n",
                argv[1], argv[2]);
    diff_section(base, after, "gauges", /*timings=*/true);
    diff_section(base, after, "counters", /*timings=*/false);
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  return 0;
}
