// obs_validate — structural validator for the observability artifacts
// `hispar measure` and `hispar build` write (--metrics-out /
// --trace-out / --report-out). --report dispatches on the document's
// "schema" member, so both report flavours share one flag.
//
// CI runs a small campaign, then this tool, so a malformed or
// schema-drifted artifact fails the build instead of surfacing when
// someone loads the trace in Perfetto weeks later.
//
// The schema checks themselves live in obs/validate.h (so the tests
// can corrupt individual fields against them directly); this tool only
// loads the files and maps a validation throw to exit 1.
//
// Usage: obs_validate --metrics FILE --trace FILE --report FILE
// (each flag optional; at least one required). Exit 0 when every given
// artifact parses and matches its schema, 1 otherwise.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/validate.h"
#include "util/args.h"

namespace {

std::string load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto args = hispar::util::Args::parse(argc, argv);
    const std::string metrics = args.get("metrics", "");
    const std::string trace = args.get("trace", "");
    const std::string report = args.get("report", "");
    if (metrics.empty() && trace.empty() && report.empty()) {
      std::cerr << "usage: obs_validate [--metrics FILE] [--trace FILE] "
                   "[--report FILE]\n";
      return 2;
    }
    if (!metrics.empty()) hispar::obs::validate_metrics_json(load(metrics));
    if (!trace.empty()) hispar::obs::validate_trace_json(load(trace));
    if (!report.empty()) hispar::obs::validate_report_json(load(report));
    std::cout << "obs_validate: ok\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "obs_validate: " << error.what() << "\n";
    return 1;
  }
}
