// hispar — the command-line tool for recreating and customizing Hispar
// lists (the paper releases exactly such tooling as its artifact [49]).
//
// Subcommands:
//   build    run the weekly list-refresh campaign and write the lists
//            as CSV (one file per week)
//            --sites N --urls M --week W --weeks K --min-results K
//            --out FILE --provider alexa|umbrella|majestic|quantcast|tranco
//            --jobs N --shards S (sharded bootstrap scan; results are
//            identical for every --jobs value)
//            --fault-profile none|uniform:R|query_timeout=R,... (inject
//            search-API faults) --max-retries N
//            --chaos-profile SPEC (correlated search-API outage windows;
//            see DESIGN.md "Chaos engine")
//            --checkpoint FILE --resume FILE (week-granular resume)
//            --churn-out FILE --ledger-out FILE (§3 churn CSV, §7 cost
//            ledger) --metrics-out/--trace-out/--report-out FILE --quiet
//   churn    weekly stability of the list (§3)
//            --sites N --urls M --weeks K
//   harden   Tranco-style multi-week hardening (§3 / Pochat et al.)
//            --sites N --urls M --weeks K --min-weeks A --out FILE
//   crawl    §4-style limited exhaustive crawl of one site
//            --domain D | --rank R, --pages N
//   measure  run the §3.1 measurement campaign over a list CSV
//            --list FILE --loads L --out FILE
//            --jobs N (worker threads; 0 = all cores; results are
//            identical for every N) --shards S (cache-warmth domains;
//            S *does* affect results — see DESIGN.md "Concurrency model")
//            --fault-profile none|uniform:R|dns_servfail=R,... (inject
//            substrate faults; see DESIGN.md "Failure model")
//            --chaos-profile SPEC (correlated outage windows with a blast
//            radius, e.g. "cdn:provider=2,start_s=120,dur_s=300,
//            kind=http_5xx,sev=0.9"; enables circuit breakers, hedged
//            DNS and deadline budgets — see DESIGN.md "Chaos engine")
//            --max-retries N --page-timeout-s T (failure handling)
//            --checkpoint FILE (append per-shard progress; resumes
//            automatically when FILE exists) --resume FILE (like
//            --checkpoint but FILE must already exist)
//            --vantages N | --vantage-profile SPEC[;SPEC...] (run the
//            campaign from N vantage points; vantage 0 writes --out,
//            vantage k writes FILE-v<k>.csv, checkpointing becomes
//            (vantage, shard)-granular, --jobs schedules the cross-
//            vantage (vantage x shard) work pool, --report-out switches
//            to the multi-vantage report) --consensus-out FILE
//            (per-site cross-vantage consensus CSV)
//            --sessions (additionally replay one warm browsing session
//            per site — landing page then --session-len internal pages
//            through a private browser cache; the cold artifacts above
//            are unchanged, the warm CSV goes to --session-out,
//            per-site cache counters to --warm-hits-out, checkpointing
//            gains a FILE-sessions companion and --report-out switches
//            to the session report) --session-len K --session-out FILE
//            --warm-hits-out FILE
//            --metrics-out FILE --trace-out FILE --report-out FILE
//            (observability artifacts; any of them enables telemetry)
//            --quiet (suppress the multi-line run report)
//   help     print the full flag reference (also: --help anywhere)
//   survey   print Table 1 from the embedded §2 corpus
//
// Global: --seed S --universe N control the synthetic web.
// Unrecognized flags are an error (typo protection).
#include <fstream>
#include <iostream>
#include <memory>

#include "core/analyses.h"
#include "core/cli_checks.h"
#include "core/hardening.h"
#include "core/hispar.h"
#include "core/list_build.h"
#include "core/measurement.h"
#include "core/serialization.h"
#include "core/session.h"
#include "core/vantage.h"
#include "net/vantage_profile.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "search/crawler.h"
#include "survey/classifier.h"
#include "util/args.h"
#include "util/table.h"

namespace {

using namespace hispar;

toplist::Provider provider_from(const std::string& name) {
  if (name == "alexa") return toplist::Provider::kAlexa;
  if (name == "umbrella") return toplist::Provider::kUmbrella;
  if (name == "majestic") return toplist::Provider::kMajestic;
  if (name == "quantcast") return toplist::Provider::kQuantcast;
  if (name == "tranco") return toplist::Provider::kTranco;
  throw std::invalid_argument("unknown provider: " + name);
}

struct World {
  std::unique_ptr<web::SyntheticWeb> web;
  std::unique_ptr<toplist::TopListFactory> toplists;
  std::unique_ptr<search::SearchEngine> engine;

  World(std::size_t universe, std::uint64_t seed) {
    web::SyntheticWebConfig config;
    config.site_count = universe;
    config.seed = seed;
    web = std::make_unique<web::SyntheticWeb>(config);
    toplists = std::make_unique<toplist::TopListFactory>(*web);
    engine = std::make_unique<search::SearchEngine>(*web);
  }

  core::HisparList build(const util::Args& args, std::uint64_t week) {
    core::HisparBuilder builder(*web, *toplists, *engine);
    core::HisparConfig config;
    config.name = "H" + std::to_string(args.get_int("sites", 200));
    config.target_sites = static_cast<std::size_t>(args.get_int("sites", 200));
    config.urls_per_site =
        static_cast<std::size_t>(args.get_int("urls", 20));
    config.min_internal_results =
        static_cast<std::size_t>(args.get_int("min-results", 5));
    config.bootstrap = provider_from(args.get("provider", "alexa"));
    const auto list = builder.build(config, week);
    last_stats = builder.last_build_stats();
    return list;
  }

  core::BuildStats last_stats;
};

// Artifact files are opened before a campaign runs so an unwritable
// path fails in milliseconds, not after the work (core/cli_checks).
using core::open_artifact;

// Resolve the shared --checkpoint / --resume pair. A bare --resume, a
// missing resume file and a conflicting --checkpoint all fail fast in
// core::resolve_checkpoint_path before any campaign work starts.
std::string checkpoint_path_from(const char* cmd, const util::Args& args) {
  return core::resolve_checkpoint_path(cmd, args.get("checkpoint", ""),
                                       args.has("resume"),
                                       args.get("resume", ""));
}

// "hispar.csv" + "-w3" -> "hispar-w3.csv"; suffix lands before the
// extension unless the basename has none.
std::string suffixed_csv_path(const std::string& base,
                              const std::string& suffix) {
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.rfind('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return base + suffix;
  return base.substr(0, dot) + suffix + base.substr(dot);
}

// Per-week output path: "hispar.csv" -> "hispar-w3.csv". Single-week
// builds keep the path untouched (legacy behaviour).
std::string week_csv_path(const std::string& base, std::uint64_t week) {
  return suffixed_csv_path(base, "-w" + std::to_string(week));
}

// Per-vantage metrics path: "metrics.csv" -> "metrics-v2.csv" (vantage
// 0 keeps the base path — it is the home vantage).
std::string vantage_csv_path(const std::string& base, std::size_t vantage) {
  return suffixed_csv_path(base, "-v" + std::to_string(vantage));
}

int cmd_build(World& world, const util::Args& args) {
  core::ListBuildConfig config;
  config.list.name = "H" + std::to_string(args.get_int("sites", 200));
  config.list.target_sites =
      static_cast<std::size_t>(args.get_int("sites", 200));
  config.list.urls_per_site =
      static_cast<std::size_t>(args.get_int("urls", 20));
  config.list.min_internal_results =
      static_cast<std::size_t>(args.get_int("min-results", 5));
  config.list.bootstrap = provider_from(args.get("provider", "alexa"));
  config.engine = world.engine->config();
  config.start_week = static_cast<std::uint64_t>(args.get_int("week", 0));
  config.weeks = static_cast<std::uint64_t>(args.get_int("weeks", 1));
  config.jobs = static_cast<std::size_t>(args.get_int("jobs", 1));
  config.shards = static_cast<std::size_t>(
      args.get_int("shards", static_cast<long>(config.shards)));
  core::validate_build_flags(
      {config.weeks, config.shards, config.list.target_sites});
  config.fault_profile =
      net::SearchFaultProfile::parse(args.get("fault-profile", "none"));
  config.chaos = net::OutageSchedule::parse(args.get("chaos-profile", "none"));
  config.max_query_retries = static_cast<int>(
      args.get_int("max-retries", config.max_query_retries));
  config.checkpoint_path = checkpoint_path_from("build", args);

  const std::string churn_out = args.get("churn-out", "");
  const std::string ledger_out = args.get("ledger-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string report_out = args.get("report-out", "");
  const bool quiet = args.get_bool("quiet");
  config.observability.enabled =
      !metrics_out.empty() || !trace_out.empty() || !report_out.empty();
  std::unique_ptr<std::ofstream> churn_os, ledger_os, metrics_os, trace_os,
      report_os;
  if (!churn_out.empty())
    churn_os = open_artifact("build", "churn-out", churn_out);
  if (!ledger_out.empty())
    ledger_os = open_artifact("build", "ledger-out", ledger_out);
  if (!metrics_out.empty())
    metrics_os = open_artifact("build", "metrics-out", metrics_out);
  if (!trace_out.empty())
    trace_os = open_artifact("build", "trace-out", trace_out);
  if (!report_out.empty())
    report_os = open_artifact("build", "report-out", report_out);

  core::ListBuildCampaign campaign(*world.web, *world.toplists, config);
  const auto result = campaign.run();

  // One CSV per week; a single-week build writes exactly the legacy
  // artifact (path and summary line unchanged).
  const std::string out = args.get("out", "hispar.csv");
  const double price = search::query_price_usd(config.engine.provider);
  for (std::size_t i = 0; i < result.lists.size(); ++i) {
    const core::HisparList& list = result.lists[i];
    const std::string path =
        config.weeks == 1 ? out : week_csv_path(out, list.week);
    core::save_csv(list, path);
    std::cout << "wrote " << list.total_urls() << " URLs / "
              << list.sets.size() << " sites to " << path << "  ("
              << result.weeks[i].queries_billed << " queries, $"
              << util::TextTable::num(
                     static_cast<double>(result.weeks[i].queries_billed) *
                         price,
                     2)
              << " at Google pricing)\n";
  }

  const obs::ListBuildReport report =
      core::build_listbuild_report(result, campaign.telemetry());
  if (config.weeks > 1 || campaign.telemetry().enabled)
    std::cout << obs::listbuild_summary_line(report) << "\n";
  if (campaign.telemetry().enabled && !quiet)
    std::cout << obs::render_listbuild_report_text(report);
  if (churn_os != nullptr) {
    core::write_churn_csv(*churn_os, result.lists);
    std::cout << "churn -> " << churn_out << "\n";
  }
  if (ledger_os != nullptr) {
    core::write_cost_ledger_csv(*ledger_os, result.weeks);
    std::cout << "cost ledger -> " << ledger_out << "\n";
  }
  if (metrics_os != nullptr) {
    campaign.telemetry().metrics.write_json(*metrics_os);
    std::cout << "metrics -> " << metrics_out << "\n";
  }
  if (trace_os != nullptr) {
    obs::write_chrome_trace(*trace_os, campaign.telemetry().spans);
    std::cout << "trace -> " << trace_out << "\n";
  }
  if (report_os != nullptr) {
    obs::write_listbuild_report_json(*report_os, report);
    std::cout << "report -> " << report_out << "\n";
  }
  return 0;
}

int cmd_churn(World& world, const util::Args& args) {
  const auto weeks = static_cast<std::uint64_t>(args.get_int("weeks", 4));
  if (weeks < 2) throw std::invalid_argument("churn: need --weeks >= 2");
  std::vector<core::HisparList> lists;
  for (std::uint64_t week = 0; week < weeks; ++week)
    lists.push_back(world.build(args, week));
  util::TextTable table({"week pair", "site churn", "internal URL churn"});
  for (std::uint64_t week = 0; week + 1 < weeks; ++week) {
    table.add_row(
        {std::to_string(week) + " -> " + std::to_string(week + 1),
         util::TextTable::pct(core::site_churn(lists[week], lists[week + 1])),
         util::TextTable::pct(
             core::internal_url_churn(lists[week], lists[week + 1]))});
  }
  std::cout << table;
  return 0;
}

int cmd_harden(World& world, const util::Args& args) {
  const auto weeks = static_cast<std::uint64_t>(args.get_int("weeks", 4));
  std::vector<core::HisparList> lists;
  for (std::uint64_t week = 0; week < weeks; ++week)
    lists.push_back(world.build(args, week));
  core::HardeningConfig config;
  config.min_site_appearances =
      static_cast<std::size_t>(args.get_int("min-weeks", 2));
  config.min_url_appearances = config.min_site_appearances;
  config.urls_per_site = static_cast<std::size_t>(args.get_int("urls", 20));
  const auto hardened = core::harden(lists, config);
  const std::string out = args.get("out", "hispar_hardened.csv");
  core::save_csv(hardened, out);
  std::cout << "hardened list: " << hardened.sets.size() << " sites, "
            << hardened.total_urls() << " URLs -> " << out << "\n";
  return 0;
}

int cmd_crawl(World& world, const util::Args& args) {
  const web::WebSite* site = nullptr;
  if (args.has("domain")) site = world.web->find_site(args.get("domain", ""));
  if (site == nullptr && args.has("rank"))
    site = &world.web->site_by_rank(
        static_cast<std::size_t>(args.get_int("rank", 1)));
  if (site == nullptr)
    throw std::invalid_argument("crawl: need --domain or --rank");
  search::CrawlConfig config;
  config.max_unique_pages =
      static_cast<std::size_t>(args.get_int("pages", 5000));
  const auto result = search::crawl_site(*site, config);
  std::cout << site->domain() << ": discovered " << result.pages.size()
            << " unique pages (" << result.link_fetches
            << " pages expanded, " << result.robots_skipped
            << " blocked by robots.txt)\n";
  return 0;
}

int cmd_measure(World& world, const util::Args& args) {
  const std::string list_path = args.get("list", "");
  core::HisparList list;
  if (list_path.empty()) {
    list = world.build(args, 0);
  } else {
    list = core::load_csv(list_path);
  }
  core::CampaignConfig config;
  config.landing_loads = static_cast<int>(args.get_int("loads", 10));
  config.jobs = static_cast<std::size_t>(args.get_int("jobs", 1));
  config.shards = static_cast<std::size_t>(
      args.get_int("shards", static_cast<long>(config.shards)));
  config.fault_profile =
      net::FaultProfile::parse(args.get("fault-profile", "none"));
  config.chaos = net::OutageSchedule::parse(args.get("chaos-profile", "none"));
  config.max_page_retries =
      static_cast<int>(args.get_int("max-retries", config.max_page_retries));
  config.page_timeout_s =
      args.get_double("page-timeout-s", config.page_timeout_s);

  // The whole flag-combination matrix (shard bounds, vantage mode,
  // session mode and their conflicts) is validated in one place so the
  // tests can drive it table-style (core/cli_checks).
  const std::string session_out_flag = args.get("session-out", "");
  const std::string warm_hits_out = args.get("warm-hits-out", "");
  const std::string consensus_out = args.get("consensus-out", "");
  const long session_len = args.get_int("session-len", 5);
  core::MeasureFlags flag_view;
  flag_view.shards = config.shards;
  flag_view.list_sites = list.sets.size();
  flag_view.has_vantages = args.has("vantages");
  if (flag_view.has_vantages) flag_view.vantages = args.get_int("vantages", 1);
  flag_view.vantage_profile = args.get("vantage-profile", "");
  flag_view.consensus_out = consensus_out;
  flag_view.sessions = args.get_bool("sessions");
  flag_view.has_session_flags = args.has("session-len") ||
                                !session_out_flag.empty() ||
                                !warm_hits_out.empty();
  flag_view.session_len = session_len;
  const core::MeasurePlan plan = core::validate_measure_flags(flag_view);

  const std::string checkpoint_path = checkpoint_path_from("measure", args);

  // Vantage mode: any vantage flag routes the run through the
  // multi-vantage engine (a single vantage through it is byte-identical
  // to the plain campaign; only the checkpoint format differs).
  const bool vantage_mode = plan.vantage_mode;
  const std::vector<net::VantageProfile>& profiles = plan.profiles;

  // Session mode: replay one warm browsing session per site after the
  // cold campaign. The cold artifacts stay byte-identical to a run
  // without --sessions; the warm CSV, cache counters, checkpoint
  // companion and the session report are new files.
  const bool session_mode = plan.session_mode;
  const std::string out = args.get("out", "metrics.csv");
  const std::string session_out = session_out_flag.empty()
                                      ? suffixed_csv_path(out, "-sessions")
                                      : session_out_flag;

  // Observability: any artifact flag enables telemetry.
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string report_out = args.get("report-out", "");
  const bool quiet = args.get_bool("quiet");
  config.observability.enabled =
      !metrics_out.empty() || !trace_out.empty() || !report_out.empty();
  // The primary CSV opens up front like every secondary artifact: an
  // unwritable --out must fail before the campaign runs, not silently
  // drop the results after it (a fuzz-era CLI-drive find).
  std::unique_ptr<std::ofstream> out_os = open_artifact("measure", "out", out);
  std::unique_ptr<std::ofstream> metrics_os, trace_os, report_os,
      consensus_os, session_os, warm_hits_os;
  if (!metrics_out.empty())
    metrics_os = open_artifact("measure", "metrics-out", metrics_out);
  if (!trace_out.empty())
    trace_os = open_artifact("measure", "trace-out", trace_out);
  if (!report_out.empty())
    report_os = open_artifact("measure", "report-out", report_out);
  if (!consensus_out.empty())
    consensus_os = open_artifact("measure", "consensus-out", consensus_out);
  if (session_mode) {
    session_os = open_artifact("measure", "session-out", session_out);
    if (!warm_hits_out.empty())
      warm_hits_os = open_artifact("measure", "warm-hits-out", warm_hits_out);
  }

  std::unique_ptr<core::MeasurementCampaign> single;
  std::unique_ptr<core::VantageCampaign> multi;
  std::vector<std::vector<core::SiteObservation>> per_vantage;
  if (vantage_mode) {
    core::VantageCampaignConfig vantage_config;
    vantage_config.base = config;
    vantage_config.profiles = profiles;
    vantage_config.checkpoint_path = checkpoint_path;
    multi = std::make_unique<core::VantageCampaign>(*world.web,
                                                    std::move(vantage_config));
    per_vantage = multi->run(list).observations;
  } else {
    config.checkpoint_path = checkpoint_path;
    single = std::make_unique<core::MeasurementCampaign>(*world.web, config);
    per_vantage.push_back(single->run(list));
  }

  // The warm replay runs after the cold campaign so the two share a
  // list and substrate configuration; its checkpoint is a companion
  // file (FILE-sessions) at session granularity.
  std::unique_ptr<core::SessionCampaign> session_campaign;
  std::vector<core::SiteObservation> warm_sites;
  if (session_mode) {
    core::SessionConfig session_config;
    session_config.base = config;
    session_config.base.checkpoint_path.clear();
    session_config.session_len = static_cast<std::size_t>(session_len);
    if (!checkpoint_path.empty())
      session_config.checkpoint_path =
          suffixed_csv_path(checkpoint_path, "-sessions");
    session_campaign = std::make_unique<core::SessionCampaign>(
        *world.web, std::move(session_config));
    warm_sites = session_campaign->run(list);
  }

  // In session mode the observability artifacts describe the warm
  // replay (the cold campaign's telemetry is byte-identical to a
  // sessions-off run and can be exported by one).
  const obs::RunTelemetry& telemetry =
      vantage_mode ? multi->telemetry()
                   : (session_mode ? session_campaign->telemetry()
                                   : single->telemetry());
  const auto& sites = per_vantage.front();

  core::write_measure_csv(*out_os, sites);
  std::cout << "measured " << sites.size() << " sites -> " << out << "\n";
  for (std::size_t v = 1; v < per_vantage.size(); ++v) {
    const std::string path = vantage_csv_path(out, v);
    auto vantage_os = open_artifact("measure", "out", path);
    core::write_measure_csv(*vantage_os, per_vantage[v]);
    std::cout << "vantage " << v << " (" << profiles[v].name << ") -> "
              << path << "\n";
  }
  if (session_os != nullptr) {
    core::write_measure_csv(*session_os, warm_sites);
    std::cout << "sessions -> " << session_out << "\n";
  }
  if (warm_hits_os != nullptr) {
    core::write_warm_hits_csv(*warm_hits_os, warm_sites,
                              session_campaign->cache_stats());
    std::cout << "warm hits -> " << warm_hits_out << "\n";
  }

  // All run accounting flows through a structured report; in the
  // single-vantage case the summary line it renders is byte-identical
  // to the historical one, and the artifact print order (metrics,
  // trace, report) is the legacy order.
  std::unique_ptr<obs::RunReport> run_report;
  std::unique_ptr<obs::VantageReport> vantage_report;
  std::unique_ptr<obs::SessionReport> session_report;
  if (per_vantage.size() == 1) {
    run_report = std::make_unique<obs::RunReport>(
        core::build_run_report(sites, single->telemetry()));
    std::cout << obs::summary_line(*run_report) << "\n";
    if (!session_mode && telemetry.enabled && !quiet)
      std::cout << obs::render_report_text(*run_report);
  } else {
    vantage_report = std::make_unique<obs::VantageReport>(
        core::build_vantage_report(per_vantage, profiles, telemetry));
    std::cout << obs::vantage_summary_line(*vantage_report) << "\n";
    if (telemetry.enabled && !quiet)
      std::cout << obs::render_vantage_report_text(*vantage_report);
  }
  if (session_mode) {
    session_report = std::make_unique<obs::SessionReport>(
        core::build_session_report(sites, warm_sites,
                                   session_campaign->cache_stats(), telemetry,
                                   static_cast<std::size_t>(session_len)));
    std::cout << obs::session_summary_line(*session_report) << "\n";
    if (telemetry.enabled && !quiet)
      std::cout << obs::render_session_report_text(*session_report);
  }
  if (metrics_os != nullptr) {
    telemetry.metrics.write_json(*metrics_os);
    std::cout << "metrics -> " << metrics_out << "\n";
  }
  if (trace_os != nullptr) {
    obs::write_chrome_trace(*trace_os, telemetry.spans);
    std::cout << "trace -> " << trace_out << "\n";
  }
  if (report_os != nullptr) {
    if (session_report != nullptr)
      obs::write_session_report_json(*report_os, *session_report);
    else if (run_report != nullptr)
      obs::write_report_json(*report_os, *run_report);
    else
      obs::write_vantage_report_json(*report_os, *vantage_report);
    std::cout << "report -> " << report_out << "\n";
  }
  if (consensus_os != nullptr) {
    core::write_vantage_consensus_csv(*consensus_os, per_vantage);
    std::cout << "consensus -> " << consensus_out << "\n";
  }

  const auto size = core::compare_metric(sites, core::metric::bytes);
  const auto plt = core::compare_metric(sites, core::metric::plt_ms);
  if (size.landing.empty()) {
    std::cout << "no usable sites; skipping landing-vs-internal contrast\n";
    return 0;
  }
  std::cout << "landing larger for "
            << util::TextTable::pct(size.fraction_landing_greater())
            << " of sites; landing faster for "
            << util::TextTable::pct(1.0 - plt.fraction_landing_greater())
            << "\n";
  if (session_report != nullptr) {
    for (const auto& line : session_report->metric_lines) {
      if (line.metric != "plt_ms" || !line.has_values) continue;
      const double cold_gap =
          line.cold_landing_median - line.cold_internal_median;
      const double warm_gap =
          line.warm_landing_median - line.warm_internal_median;
      std::cout << "PLT landing-internal gap: cold "
                << util::TextTable::num(cold_gap, 1) << " ms vs warm "
                << util::TextTable::num(warm_gap, 1) << " ms\n";
    }
  }
  return 0;
}

int cmd_survey(const util::Args&) {
  const auto corpus = survey::survey_corpus();
  std::cout << survey::render_table1(corpus);
  const auto summary = survey::summarize(corpus);
  std::cout << summary.using_top_list << " papers use a top list; "
            << summary.major + summary.minor
            << " need at least a minor revision\n";
  return 0;
}

void print_help(std::ostream& out, const std::string& program) {
  out << "usage: " << program
      << " build|churn|harden|crawl|measure|survey|help [--flags]\n"
         "\n"
         "global flags:\n"
         "  --seed S            synthetic-web seed (default 42)\n"
         "  --universe N        synthetic-web site count (default 3000)\n"
         "  --help              print this reference and exit\n"
         "\n"
         "build: run the weekly list-refresh campaign, one CSV per week\n"
         "  --sites N --urls M --min-results K --out FILE\n"
         "  --provider alexa|umbrella|majestic|quantcast|tranco\n"
         "  --week W            first week to build (default 0)\n"
         "  --weeks K           refresh-loop length (default 1; multi-week\n"
         "                      runs write FILE-w<week>.csv per week)\n"
         "  --jobs N            worker threads; 0 = all cores; lists are\n"
         "                      identical for every N (default 1)\n"
         "  --shards S          scan shards; fault streams are keyed by\n"
         "                      shard, so S affects faulty runs (default 8)\n"
         "  --fault-profile P   none|uniform:R|query_timeout=R,\n"
         "                      empty_page=R,quota_exceeded=R,rate_limited=R\n"
         "  --chaos-profile C   correlated outage windows, e.g.\n"
         "                      \"search:mtbf_s=600,mttr_s=120,\n"
         "                      kind=rate_limited,sev=0.8\" (only search-\n"
         "                      scope rules affect the build)\n"
         "  --max-retries N     query attempts beyond the first (default 2)\n"
         "  --checkpoint FILE   append completed weeks; resumes\n"
         "                      automatically when FILE exists\n"
         "  --resume FILE       like --checkpoint, FILE must exist\n"
         "  --churn-out FILE    week-over-week churn CSV\n"
         "  --ledger-out FILE   per-week, per-provider cost ledger CSV\n"
         "  --metrics-out FILE --trace-out FILE --report-out FILE\n"
         "                      observability artifacts (enable telemetry)\n"
         "  --quiet             suppress the multi-line build report\n"
         "\n"
         "churn: weekly stability of the list\n"
         "  --sites N --urls M --weeks K\n"
         "\n"
         "harden: Tranco-style multi-week hardening\n"
         "  --sites N --urls M --weeks K --min-weeks A --out FILE\n"
         "\n"
         "crawl: limited exhaustive crawl of one site\n"
         "  --domain D | --rank R, --pages N\n"
         "\n"
         "measure: run the measurement campaign over a list CSV\n"
         "  --list FILE         list to measure (default: build one)\n"
         "  --loads L           landing-page loads per site (default 10)\n"
         "  --out FILE          metrics CSV (default metrics.csv)\n"
         "  --jobs N            worker threads; 0 = all cores; results\n"
         "                      are identical for every N (default 1)\n"
         "  --shards S          cache-warmth domains; S *does* affect\n"
         "                      results (default 8)\n"
         "  --fault-profile P   none|uniform:R|dns_servfail=R,...\n"
         "  --chaos-profile C   ';'-separated correlated outage rules:\n"
         "                      scope cdn|resolver|origin|search, keys\n"
         "                      provider=/domain=/kind=/sev= and either\n"
         "                      start_s=/dur_s= or mtbf_s=/mttr_s=, e.g.\n"
         "                      \"cdn:provider=2,start_s=120,dur_s=300,\n"
         "                      kind=http_5xx,sev=0.9\"; enables circuit\n"
         "                      breakers, hedged DNS, deadline budgets\n"
         "  --max-retries N --page-timeout-s T\n"
         "  --checkpoint FILE   append per-shard progress; resumes\n"
         "                      automatically when FILE exists\n"
         "  --resume FILE       like --checkpoint, FILE must exist\n"
         "  --vantages N        run from N vantage points (deterministic\n"
         "                      built-in profiles; vantage 0 is the home\n"
         "                      vantage and writes --out, vantage k writes\n"
         "                      FILE-v<k>.csv; --jobs threads pull\n"
         "                      (vantage, shard) units, checkpoints become\n"
         "                      (vantage, shard)-granular)\n"
         "  --vantage-profile P ';'-separated profile specs, e.g.\n"
         "                      \"us-home;eu:region=eu:resolver=public\"\n"
         "                      (keys: region, resolver, doh, edge,\n"
         "                      access_ms, bandwidth, faults)\n"
         "  --consensus-out F   per-site cross-vantage consensus CSV\n"
         "  --sessions          after the cold campaign, replay one warm\n"
         "                      browsing session per site (landing page\n"
         "                      then internal pages through a private\n"
         "                      HTTP cache + warm DNS + keep-alive); the\n"
         "                      cold artifacts are unchanged, telemetry\n"
         "                      artifacts describe the warm replay, and\n"
         "                      --report-out becomes the session report\n"
         "  --session-len K     internal pages per session, >= 1\n"
         "                      (default 5; needs --sessions)\n"
         "  --session-out FILE  warm per-session CSV (default: --out\n"
         "                      with a -sessions suffix)\n"
         "  --warm-hits-out F   per-site browser-cache counter CSV\n"
         "  --metrics-out FILE  merged metrics registry as JSON\n"
         "  --trace-out FILE    virtual-clock Chrome trace JSON\n"
         "                      (open in ui.perfetto.dev)\n"
         "  --report-out FILE   structured run report as JSON\n"
         "                      (any of the three enables telemetry;\n"
         "                      measurements are unaffected)\n"
         "  --quiet             suppress the multi-line run report\n"
         "\n"
         "survey: print Table 1 from the embedded corpus\n";
}

int usage(const std::string& program) {
  print_help(std::cerr, program);
  return 2;
}

}  // namespace

namespace {

// A typo'd flag silently falling back to its default is the worst
// failure mode for a measurement tool: the campaign runs, the numbers
// look plausible, and they are wrong. Args tracks which flags were
// read; anything left over is an error.
int reject_unused_flags(const util::Args& args, int status) {
  const auto unused = args.unused();
  if (unused.empty()) return status;
  std::cerr << "hispar: unrecognized flag";
  if (unused.size() > 1) std::cerr << 's';
  for (const auto& flag : unused) std::cerr << " --" << flag;
  std::cerr << " (see the header of tools/hispar_cli.cpp)\n";
  return 2;
}

int dispatch(const util::Args& args) {
  if (args.get_bool("help") || args.subcommand() == "help") {
    print_help(std::cout, args.program());
    return 0;
  }
  if (args.subcommand().empty()) return usage(args.program());
  if (args.subcommand() == "survey") return cmd_survey(args);

  World world(static_cast<std::size_t>(args.get_int("universe", 3000)),
              static_cast<std::uint64_t>(args.get_int("seed", 42)));
  if (args.subcommand() == "build") return cmd_build(world, args);
  if (args.subcommand() == "churn") return cmd_churn(world, args);
  if (args.subcommand() == "harden") return cmd_harden(world, args);
  if (args.subcommand() == "crawl") return cmd_crawl(world, args);
  if (args.subcommand() == "measure") return cmd_measure(world, args);
  return usage(args.program());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args = util::Args::parse(argc, argv);
    return reject_unused_flags(args, dispatch(args));
  } catch (const std::exception& error) {
    std::cerr << "hispar: " << error.what() << "\n";
    return 1;
  }
}
