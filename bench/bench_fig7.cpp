// Figure 7: per-object time in the HAR `wait` phase (§5.6).
// Objects on internal pages spend 20% more time in wait than those on
// landing pages (median) — the CDN-backhaul / turnaround-time effect.
#include "common.h"

using namespace hispar;

int main() {
  bench::BenchWorld world;

  bench::print_header(
      "Figure 7 — time spent in `wait` per object (H1K)",
      "internal-page objects spend 20% more time in wait (median); "
      "about half of an object's download time is wait");

  const auto waits = core::wait_times(world.sites);
  const double landing_median = util::median(waits.landing_ms);
  const double internal_median = util::median(waits.internal_ms);
  const auto ks = util::ks_two_sample(waits.landing_ms, waits.internal_ms);

  util::TextTable table({"page type", "p10", "p25", "median", "p75", "p90"});
  const auto row = [&](const char* label, const std::vector<double>& sample) {
    table.add_row({label, util::TextTable::num(util::quantile(sample, 0.10), 1),
                   util::TextTable::num(util::quantile(sample, 0.25), 1),
                   util::TextTable::num(util::quantile(sample, 0.50), 1),
                   util::TextTable::num(util::quantile(sample, 0.75), 1),
                   util::TextTable::num(util::quantile(sample, 0.90), 1)});
  };
  row("landing (ms)", waits.landing_ms);
  row("internal (ms)", waits.internal_ms);
  std::cout << table;

  std::cout << "internal median wait is "
            << util::TextTable::pct(internal_median / landing_median - 1.0)
            << " above landing (paper: +20%); KS D="
            << util::TextTable::num(ks.statistic, 3)
            << " p=" << util::TextTable::num(ks.p_value, 6) << "\n";
  std::cout << "samples: landing " << waits.landing_ms.size() << ", internal "
            << waits.internal_ms.size() << "\n";
  return 0;
}
