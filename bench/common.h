// Shared context for the reproduction benches.
//
// Every bench binary regenerates one paper table/figure. They share the
// same world: a synthetic web, the Alexa-like bootstrap, the H1K list
// (1000 sites x [1 landing + <= 19 internal]) and one measurement
// campaign over it (landing x10, internal x1), exactly per §3.1.
//
// Scale can be reduced for quick runs via the HISPAR_SITES environment
// variable (default 1000; the paper's H1K). HISPAR_JOBS sets the number
// of campaign worker threads (0 = all cores); campaign results are
// bit-identical for every HISPAR_JOBS value, so threading a bench only
// changes its wall-clock time.
// Setting HISPAR_BENCH_JSON=<dir> makes write_bench_json() drop a
// machine-readable BENCH_<name>.json (phase timings + the campaign's
// telemetry counters) into that directory, through the same metrics
// registry the campaign itself uses — one export path for all timings.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/analyses.h"
#include "core/hispar.h"
#include "core/measurement.h"
#include "obs/metrics.h"
#include "util/table.h"

namespace hispar::bench {

inline std::size_t env_sites(std::size_t fallback = 1000) {
  if (const char* env = std::getenv("HISPAR_SITES")) {
    const long value = std::atol(env);
    if (value >= 30) return static_cast<std::size_t>(value);
  }
  return fallback;
}

// Campaign worker threads; HISPAR_JOBS=0 means one per hardware thread.
inline std::size_t env_jobs(std::size_t fallback = 1) {
  if (const char* env = std::getenv("HISPAR_JOBS")) {
    const long value = std::atol(env);
    if (value >= 0) return static_cast<std::size_t>(value);
  }
  return fallback;
}

// Writes `metrics` as BENCH_<name>.json into $HISPAR_BENCH_JSON (no-op
// when the variable is unset, so benches stay silent by default). The
// file is the same metrics-JSON schema the campaign exports; compare
// two of them with tools/bench_diff.
inline void write_bench_json(const obs::MetricsRegistry& metrics,
                             const std::string& name) {
  const char* dir = std::getenv("HISPAR_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "bench: cannot write " << path << "\n";
    return;
  }
  metrics.write_json(out);
  std::cout << "bench telemetry -> " << path << "\n";
}

struct BenchWorld {
  std::unique_ptr<web::SyntheticWeb> web;
  std::unique_ptr<toplist::TopListFactory> toplists;
  std::unique_ptr<search::SearchEngine> engine;
  core::HisparList h1k;
  std::vector<core::SiteObservation> sites;  // campaign over h1k
  // Wall-clock phase timings (gauges, ms) plus the campaign's merged
  // telemetry counters when observability is on; exported by
  // write_bench_json().
  obs::MetricsRegistry metrics;

  // `run_campaign` can be disabled for benches that only need the list.
  explicit BenchWorld(bool run_campaign = true,
                      std::size_t target_sites = env_sites(),
                      core::CampaignConfig campaign_config = {}) {
    using Clock = std::chrono::steady_clock;
    const auto elapsed_ms = [](Clock::time_point since) {
      return std::chrono::duration<double, std::milli>(Clock::now() - since)
          .count();
    };

    auto started = Clock::now();
    web::SyntheticWebConfig web_config;
    web_config.site_count =
        std::max<std::size_t>(3000, target_sites * 3);
    web = std::make_unique<web::SyntheticWeb>(web_config);
    toplists = std::make_unique<toplist::TopListFactory>(*web);
    engine = std::make_unique<search::SearchEngine>(*web);
    metrics.gauge("bench.web_build_ms") = elapsed_ms(started);

    started = Clock::now();
    core::HisparBuilder builder(*web, *toplists, *engine);
    core::HisparConfig config;
    config.name = "H1K";
    config.target_sites = target_sites;
    config.urls_per_site = 20;
    config.min_internal_results = 5;
    h1k = builder.build(config, /*week=*/0);
    metrics.gauge("bench.list_build_ms") = elapsed_ms(started);
    metrics.gauge("bench.sites") = static_cast<double>(h1k.sets.size());

    if (run_campaign) {
      campaign_config.jobs = env_jobs(campaign_config.jobs);
      started = Clock::now();
      core::MeasurementCampaign campaign(*web, campaign_config);
      sites = campaign.run(h1k);
      metrics.gauge("bench.campaign_ms") = elapsed_ms(started);
      if (campaign.telemetry().enabled)
        metrics.merge_from(campaign.telemetry().metrics);
    }
  }

  // Writes this world's BENCH_<name>.json (see the free function).
  void write_bench_json(const std::string& name) const {
    bench::write_bench_json(metrics, name);
  }

  // Positional slices (Ht30/Ht100/Hb100, §3.1).
  std::vector<core::SiteObservation> top(std::size_t n) const {
    return {sites.begin(),
            sites.begin() + static_cast<std::ptrdiff_t>(
                                std::min(n, sites.size()))};
  }
  std::vector<core::SiteObservation> bottom(std::size_t n) const {
    const std::size_t first = sites.size() > n ? sites.size() - n : 0;
    return {sites.begin() + static_cast<std::ptrdiff_t>(first), sites.end()};
  }
};

inline void print_header(const std::string& title,
                         const std::string& paper_claim) {
  std::cout << "==== " << title << " ====\n";
  std::cout << "paper: " << paper_claim << "\n\n";
}

// Render a small CDF summary line for a sample.
inline std::string cdf_summary(std::vector<double> values) {
  if (values.empty()) return "(empty)";
  util::EmpiricalCdf cdf(std::move(values));
  std::string out;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    out += "p" + std::to_string(static_cast<int>(q * 100)) + "=" +
           util::TextTable::num(cdf.quantile(q)) + "  ";
  }
  return out;
}

}  // namespace hispar::bench
