// Figure 8: security & privacy (§6).
//  8a: 36/1000 landing pages on HTTP; 170 sites with secure landing
//      pages have >= 1 HTTP internal page (36 have >= 10); mixed content
//      on 35 landing pages vs 194 sites with mixed internal pages.
//  8b: internal pages collectively contact a median of 18 third parties
//      never seen on the landing page; p90 >= 80.
//  8c: tracking requests at p80: landing 28 vs internal 20; ~10% of
//      sites track on the landing page only.
//  §6.3 header bidding (Ht100+Hb100): 17/200 sites with HB on landing,
//      +12 internal-only; ad slots p80: landing 9 vs internal 7.
#include "common.h"

using namespace hispar;

int main() {
  bench::BenchWorld world;

  // --- 8a ---
  bench::print_header(
      "Figure 8a — HTTP and mixed content (H1K)",
      "36 HTTP landing pages; 170 sites w/ >= 1 HTTP internal page, 36 w/ "
      ">= 10; mixed content: 35 landing vs 194 sites w/ mixed internal");
  const auto security = core::security_summary(world.sites);
  util::TextTable table({"statistic", "measured", "paper (scaled)"});
  const auto scale = static_cast<double>(world.sites.size()) / 1000.0;
  const auto scaled = [&](double paper_value) {
    return util::TextTable::num(paper_value * scale, 0);
  };
  table.add_row({"HTTP landing pages",
                 std::to_string(security.http_landing_sites), scaled(36)});
  table.add_row({"sites with >= 1 HTTP internal page",
                 std::to_string(security.sites_with_http_internal),
                 scaled(170)});
  table.add_row({"sites with >= 10 HTTP internal pages",
                 std::to_string(security.sites_with_10plus_http_internal),
                 scaled(36)});
  table.add_row({"mixed-content landing pages",
                 std::to_string(security.mixed_landing_sites), scaled(35)});
  table.add_row({"sites with >= 1 mixed internal page",
                 std::to_string(security.sites_with_mixed_internal),
                 scaled(194)});
  std::cout << table << "\n";

  // --- 8b ---
  bench::print_header(
      "Figure 8b — third parties unseen on the landing page",
      "median 18 per site; 10% of sites reach 80+");
  auto unseen = core::unseen_third_parties(world.sites);
  std::cout << "CDF: " << bench::cdf_summary(unseen) << "\n";
  std::cout << "median " << util::median(unseen) << " (paper: 18);  p90 "
            << util::quantile(unseen, 0.9) << " (paper: ~80)\n\n";

  // --- 8c ---
  bench::print_header(
      "Figure 8c — tracking requests per page",
      "p80: landing 28 vs internal 20; ~10% of sites have trackers only "
      "on the landing page");
  const auto landing_trackers =
      core::landing_values(world.sites, core::metric::tracking_requests);
  const auto internal_trackers =
      core::internal_values(world.sites, core::metric::tracking_requests);
  std::cout << "p80 tracking requests: landing "
            << util::quantile(landing_trackers, 0.8) << " vs internal "
            << util::quantile(internal_trackers, 0.8) << "\n";
  std::size_t landing_only = 0;
  for (const auto& site : world.sites) {
    const bool landing_tracks = site.landing.tracking_requests > 0;
    bool internal_tracks = false;
    for (const auto& metrics : site.internals)
      internal_tracks = internal_tracks || metrics.tracking_requests > 0;
    if (landing_tracks && !internal_tracks) ++landing_only;
  }
  std::cout << "sites with trackers on the landing page only: "
            << util::TextTable::pct(static_cast<double>(landing_only) /
                                    world.sites.size())
            << "  (paper: ~10%)\n";
  const auto ks =
      core::ks_landing_vs_internal(world.sites, core::metric::tracking_requests);
  std::cout << "KS D=" << util::TextTable::num(ks.statistic, 3)
            << " p=" << util::TextTable::num(ks.p_value, 6) << "\n\n";

  // --- §6.3 header bidding on Ht100 + Hb100 ---
  bench::print_header(
      "§6.3 — header bidding (Ht100+Hb100, 200 sites)",
      "17 sites with HB ads on landing; 12 more on internal pages only; "
      "ad slots p80: landing 9 vs internal 7");
  auto edges = world.top(100);
  {
    const auto bottom = world.bottom(100);
    edges.insert(edges.end(), bottom.begin(), bottom.end());
  }
  const auto hb = core::hb_summary(edges);
  std::cout << "HB on landing: " << hb.sites_with_hb_landing
            << " sites (paper: 17);  HB on internal only: "
            << hb.sites_with_hb_internal_only << " (paper: 12)\n";
  if (!hb.landing_slots.empty()) {
    std::cout << "ad slots p80 among HB sites: landing "
              << util::quantile(hb.landing_slots, 0.8) << " vs internal "
              << util::quantile(hb.internal_slots, 0.8)
              << "  (paper: 9 vs 7)\n";
  }
  return 0;
}
