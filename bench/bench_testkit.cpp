// Throughput baseline for the property-testing kit (ISSUE 9): what one
// generated case costs per layer, so CI iteration budgets (50 configs
// per engine in test_properties.cpp, 10k fuzz iterations in the
// fuzz-smoke job) can be sized against measured cost instead of
// guesses. Reports cases/second for the generators, the byte mutator,
// the reference-model oracles, and one full jobs-identity oracle case
// (the expensive end: two engine runs per case).
//
// HISPAR_BENCH_JSON exports the timings as BENCH_testkit.json through
// the usual metrics registry.
#include <chrono>

#include "common.h"
#include "testkit/oracles.h"
#include "testkit/property.h"

namespace {

using namespace hispar;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

}  // namespace

int main() {
  bench::print_header(
      "property-testkit throughput",
      "cost per generated case, per layer: spec/config generators and "
      "byte mutation are near-free, model oracles are cheap, engine "
      "oracles pay for two full campaign runs per case");

  obs::MetricsRegistry metrics;
  util::TextTable table({"layer", "cases", "wall s", "cases/s"});
  const auto report = [&](const char* layer, int cases, double elapsed_s) {
    table.add_row({layer, std::to_string(cases),
                   util::TextTable::num(elapsed_s, 3),
                   util::TextTable::num(cases / elapsed_s, 1)});
    metrics.gauge("bench.testkit." + std::string(layer) + ".cases_per_s") =
        cases / elapsed_s;
  };

  {
    const int cases = 20000;
    const auto start = Clock::now();
    std::size_t sink = 0;
    for (int i = 0; i < cases; ++i) {
      testkit::Gen gen(testkit::case_seed(1, i), 10 + i % 40);
      sink += testkit::gen_fault_spec(gen).size();
      sink += testkit::gen_chaos_spec(gen).size();
      sink += testkit::gen_vantage_list_spec(gen).size();
    }
    report("spec-generators", cases, seconds_since(start));
    if (sink == 0) return 1;  // keep the loop observable
  }

  {
    const int cases = 20000;
    const auto start = Clock::now();
    std::size_t sink = 0;
    for (int i = 0; i < cases; ++i) {
      testkit::Gen gen(testkit::case_seed(2, i), 10 + i % 40);
      sink += testkit::gen_campaign_config(gen).shards;
      sink += testkit::gen_session_config(gen).session_len;
    }
    report("config-generators", cases, seconds_since(start));
    if (sink == 0) return 1;
  }

  {
    const std::string artifact =
        "hispar-checkpoint,v1,42\nshard,0,2\nsite,0,a.example,1,News,0,0,1,"
        "2,1\nendshard,0\n";
    const int cases = 20000;
    const auto start = Clock::now();
    std::size_t sink = 0;
    for (int i = 0; i < cases; ++i) {
      testkit::Gen gen(testkit::case_seed(3, i), 10 + i % 40);
      sink += testkit::mutate(gen, artifact).size();
    }
    report("byte-mutation", cases, seconds_since(start));
    if (sink == 0) return 1;
  }

  {
    const int cases = 500;
    const auto start = Clock::now();
    for (int i = 0; i < cases; ++i) {
      testkit::Gen gen(testkit::case_seed(4, i), 10 + i % 40);
      if (auto violation = testkit::check_lru_model(gen)) {
        std::cerr << "lru model violation: " << *violation << "\n";
        return 1;
      }
    }
    report("lru-model-oracle", cases, seconds_since(start));
  }

  {
    const int cases = 500;
    const auto start = Clock::now();
    for (int i = 0; i < cases; ++i) {
      testkit::Gen gen(testkit::case_seed(5, i), 10 + i % 40);
      if (auto violation = testkit::check_breaker_model(gen)) {
        std::cerr << "breaker model violation: " << *violation << "\n";
        return 1;
      }
    }
    report("breaker-model-oracle", cases, seconds_since(start));
  }

  {
    // The expensive end: one jobs-identity case = two campaign runs
    // over a pooled world (world construction amortized across cases).
    testkit::WorldPool pool;
    const int cases = 10;
    const auto start = Clock::now();
    for (int i = 0; i < cases; ++i) {
      testkit::Gen gen(testkit::case_seed(6, i), 30);
      const auto& world = pool.pick(gen);
      auto config = testkit::gen_campaign_config(gen);
      if (auto violation = testkit::check_measure_jobs_identity(
              world, config, 2 + gen.index(7))) {
        std::cerr << "jobs-identity violation: " << *violation << "\n";
        return 1;
      }
    }
    report("measure-jobs-oracle", cases, seconds_since(start));
  }

  std::cout << table;
  std::cout << "\nbudget rule of thumb: the CI property suite spends ~50 "
               "cases on each engine oracle and hundreds on the cheap "
               "layers; this table is the per-case price list.\n";
  bench::write_bench_json(metrics, "testkit");
  return 0;
}
