// §3 "Why Alexa and not others?" — the paper argues the choice of
// bootstrap list is "somewhat arbitrary... our study is agnostic to
// which top list is used for bootstrapping Hispar, since none of the top
// lists include internal pages." This bench verifies that claim: build
// Hispar from each provider and check that the landing-vs-internal
// headline statistics barely move, while the provider lists themselves
// overlap only partially (Scheitle et al.).
#include "common.h"
#include "toplist/providers.h"

using namespace hispar;

int main() {
  const std::size_t sites = bench::env_sites(200);
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  bench::print_header(
      "§3 — bootstrapping Hispar from different top lists",
      "the landing/internal contrasts are provider-agnostic; the lists "
      "themselves only partially overlap");

  // Pairwise overlap of the provider lists at the study size.
  const std::vector<toplist::Provider> providers = {
      toplist::Provider::kAlexa, toplist::Provider::kUmbrella,
      toplist::Provider::kMajestic, toplist::Provider::kQuantcast,
      toplist::Provider::kTranco};
  util::TextTable overlap({"provider pair", "jaccard overlap"});
  for (std::size_t a = 0; a < providers.size(); ++a) {
    for (std::size_t b = a + 1; b < providers.size(); ++b) {
      overlap.add_row(
          {toplist::provider_name(providers[a]) + " / " +
               toplist::provider_name(providers[b]),
           util::TextTable::num(
               toplist::jaccard_overlap(
                   world.toplists->weekly_list(providers[a], 0, sites),
                   world.toplists->weekly_list(providers[b], 0, sites)),
               2)});
    }
  }
  std::cout << overlap << "\n";

  util::TextTable table({"bootstrap", "sites", "% L larger", "geo L/I size",
                         "% L more objects", "% L faster"});
  for (const auto provider : providers) {
    search::SearchEngine engine(*world.web);
    core::HisparBuilder builder(*world.web, *world.toplists, engine);
    core::HisparConfig config;
    config.name = "H-" + toplist::provider_name(provider);
    config.target_sites = sites;
    config.urls_per_site = 12;
    config.bootstrap = provider;
    const auto list = builder.build(config, 0);

    core::CampaignConfig campaign_config;
    campaign_config.landing_loads = 4;
    campaign_config.jobs = hispar::bench::env_jobs();
    core::MeasurementCampaign campaign(*world.web, campaign_config);
    const auto observations = campaign.run(list);

    const auto size = core::compare_metric(observations, core::metric::bytes);
    const auto objects =
        core::compare_metric(observations, core::metric::objects);
    const auto plt = core::compare_metric(observations, core::metric::plt_ms);
    table.add_row({toplist::provider_name(provider),
                   std::to_string(list.sets.size()),
                   util::TextTable::pct(size.fraction_landing_greater()),
                   util::TextTable::num(size.geomean_ratio(), 2),
                   util::TextTable::pct(objects.fraction_landing_greater()),
                   util::TextTable::pct(1.0 - plt.fraction_landing_greater())});
  }
  std::cout << table;
  std::cout << "\nThe headline contrasts are stable across bootstraps — the "
               "gap the paper exposes\nis a property of page *types*, not "
               "of any particular ranking.\n";
  return 0;
}
