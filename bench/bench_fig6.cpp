// Figure 6: dependency depth, resource hints, handshakes.
//  6a: landing pages have more objects at every depth >= 2 (median +38%
//      at depth 2) — measured on Ht100 + Hb100.
//  6b: 69% of landing pages use >= 1 resource hint; 45% of internal
//      pages have none (52% within Ht100).
//  6c: landing pages perform 25% more handshakes (median) and spend 28%
//      more time in them.
#include "common.h"

using namespace hispar;

int main() {
  bench::BenchWorld world;
  auto edges = world.top(100);
  {
    const auto bottom = world.bottom(100);
    edges.insert(edges.end(), bottom.begin(), bottom.end());
  }

  // --- 6a ---
  bench::print_header(
      "Figure 6a — objects per dependency depth (Ht100+Hb100)",
      "landing > internal at depths 2/3 in the median (+38% at depth 2); "
      "deeper levels differ in the tail (p90)");
  const auto depths = core::depth_profile(edges);
  util::TextTable table({"depth", "L median", "I median", "L p90", "I p90"});
  const char* labels[] = {"0 (root)", "1", "2", "3", "4", "5+"};
  for (std::size_t d = 0; d < 6; ++d) {
    table.add_row({labels[d],
                   util::TextTable::num(depths.landing_median[d], 1),
                   util::TextTable::num(depths.internal_median[d], 1),
                   util::TextTable::num(depths.landing_p90[d], 1),
                   util::TextTable::num(depths.internal_p90[d], 1)});
  }
  std::cout << table;
  std::cout << "depth-2 median excess: "
            << util::TextTable::pct(depths.landing_median[2] /
                                        std::max(1e-9,
                                                 depths.internal_median[2]) -
                                    1.0)
            << "  (paper: +38%)\n\n";

  // --- 6b ---
  bench::print_header(
      "Figure 6b — HTML5 resource hints (Ht100+Hb100)",
      "69% of landing pages use >= 1 hint; 45% of internal pages have "
      "none; 52% within Ht100");
  const auto hints = core::hint_usage(edges);
  const auto hints_top = core::hint_usage(world.top(100));
  std::cout << "landing pages with >= 1 hint: "
            << util::TextTable::pct(hints.landing_with_hints)
            << "  (paper: 69%)\n";
  std::cout << "internal pages with no hints: "
            << util::TextTable::pct(hints.internal_without_hints)
            << "  (paper: 45%)\n";
  std::cout << "internal pages with no hints, Ht100 only: "
            << util::TextTable::pct(hints_top.internal_without_hints)
            << "  (paper: 52%)\n";
  std::cout << "hint-count CDF, landing:  "
            << bench::cdf_summary(hints.landing_counts) << "\n";
  std::cout << "hint-count CDF, internal: "
            << bench::cdf_summary(hints.internal_counts) << "\n\n";

  // --- 6c ---
  bench::print_header(
      "Figure 6c — TCP/TLS handshakes per page (H1K)",
      "landing performs 25% more handshakes and spends 28% more time in "
      "them (median)");
  const auto handshakes =
      core::compare_metric(world.sites, core::metric::handshakes);
  const auto handshake_time =
      core::compare_metric(world.sites, core::metric::handshake_time_ms);
  const auto ks =
      core::ks_landing_vs_internal(world.sites, core::metric::handshakes);
  std::cout << "handshake count medians: L "
            << util::median(handshakes.landing) << " vs I "
            << util::median(handshakes.internal_median) << "  (+"
            << util::TextTable::pct(util::median(handshakes.landing) /
                                        util::median(
                                            handshakes.internal_median) -
                                    1.0)
            << ", paper +25%); KS D=" << util::TextTable::num(ks.statistic, 3)
            << "\n";
  std::cout << "handshake time medians:  L "
            << util::TextTable::num(util::median(handshake_time.landing), 0)
            << " ms vs I "
            << util::TextTable::num(
                   util::median(handshake_time.internal_median), 0)
            << " ms  (+"
            << util::TextTable::pct(
                   util::median(handshake_time.landing) /
                       util::median(handshake_time.internal_median) -
                   1.0)
            << ", paper +28%)\n";
  std::cout << "handshake-count CDF, landing:  "
            << bench::cdf_summary(
                   core::landing_values(world.sites, core::metric::handshakes))
            << "\n";
  std::cout << "handshake-count CDF, internal: "
            << bench::cdf_summary(core::internal_values(
                   world.sites, core::metric::handshakes))
            << "\n";
  return 0;
}
