// Table 1: the literature survey (§2).
// 920 papers from IMC/PAM/NSDI/SIGCOMM/CoNEXT 2015-2019 -> term search
// -> false-positive filter -> manual review -> revision scores.
#include <iostream>

#include "survey/classifier.h"
#include "util/table.h"

int main() {
  using namespace hispar;

  const auto corpus = survey::survey_corpus();
  const auto summary = survey::summarize(corpus);

  std::cout << "==== Table 1 — revision scores of web-perf. studies "
               "(2015-2019) ====\n";
  std::cout << "paper: 920 papers, 119 use a top list; 30 major / 48 minor "
               "/ 41 no revision;\n       15 of 119 use internal pages "
               "(7 via traces, 8 via active crawling)\n\n";

  std::cout << survey::render_table1(corpus) << "\n";

  util::TextTable pipeline({"survey stage", "papers"});
  pipeline.add_row({"collected (5 venues x 2015-2019)",
                    std::to_string(summary.total_papers)});
  pipeline.add_row({"matched a top-list term",
                    std::to_string(summary.matched_terms)});
  pipeline.add_row({"after false-positive filtering",
                    std::to_string(summary.using_top_list)});
  pipeline.add_row({"use internal pages",
                    std::to_string(summary.using_internal_pages)});
  pipeline.add_row({"  via user traces", std::to_string(summary.trace_based)});
  pipeline.add_row({"  via active crawling/monkey testing",
                    std::to_string(summary.active_crawling)});
  pipeline.add_row({"major revision", std::to_string(summary.major)});
  pipeline.add_row({"minor revision", std::to_string(summary.minor)});
  pipeline.add_row({"no revision", std::to_string(summary.no_revision)});
  std::cout << pipeline << "\n";

  const double needing_revision =
      static_cast<double>(summary.major + summary.minor) /
      static_cast<double>(summary.using_top_list);
  std::cout << "papers needing at least a minor revision: "
            << util::TextTable::pct(needing_revision)
            << "  (paper: ~two-thirds)\n\n";

  // §3.1/§7 scale statistics over the major-revision studies.
  util::TextTable scale({"major-revision studies", "measured", "paper"});
  scale.add_row({"<= 500 sites",
                 util::TextTable::pct(
                     survey::major_fraction_sites_at_most(corpus, 500)),
                 "~50%"});
  scale.add_row({"<= 1000 sites",
                 util::TextTable::pct(
                     survey::major_fraction_sites_at_most(corpus, 1000)),
                 "60%"});
  scale.add_row({"<= 20,000 pages",
                 util::TextTable::pct(
                     survey::major_fraction_pages_at_most(corpus, 20000)),
                 "77%"});
  scale.add_row({"<= 100,000 pages",
                 util::TextTable::pct(
                     survey::major_fraction_pages_at_most(corpus, 100000)),
                 "93%"});
  std::cout << scale;
  return 0;
}
