// Scaling curve of the sharded list-build campaign (§3, §7).
//
// Runs the same weekly list refresh as the serial HisparBuilder, then
// as a ListBuildCampaign at 1, 2, 4 and 8 worker threads, and reports
// wall-clock time, speedup over the campaign's own single-worker run,
// and whether every run produced byte-identical lists (the campaign's
// contract). A final row exercises the search-API fault path
// (uniform:0.05) to show the retry/quarantine overhead.
//
// HISPAR_SITES scales the per-week target (default 240); each run
// builds 2 refresh weeks so the churn path is exercised too.
#include <chrono>
#include <cstdio>
#include <thread>

#include "common.h"
#include "core/list_build.h"
#include "core/serialization.h"
#include "util/rng.h"

namespace {

using namespace hispar;

std::uint64_t lists_digest(const core::ListBuildResult& result) {
  std::string bytes;
  for (const auto& list : result.lists) bytes += core::to_csv(list);
  return util::fnv1a(bytes);
}

}  // namespace

int main() {
  bench::print_header(
      "list-build campaign scaling",
      "weekly Hispar refresh against a metered search API (§3, §7): "
      "sharded scan, identical lists at any worker count");

  const std::size_t sites = bench::env_sites(240);
  const std::uint64_t weeks = 2;
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  core::ListBuildConfig config;
  config.list.name = "H1K";
  config.list.target_sites = sites;
  config.list.urls_per_site = 20;
  config.list.min_internal_results = 5;
  config.weeks = weeks;

  std::printf("hardware threads: %u, shards: %zu, sites/week: %zu, "
              "weeks: %llu\n\n",
              std::thread::hardware_concurrency(), config.shards, sites,
              static_cast<unsigned long long>(weeks));

  using Clock = std::chrono::steady_clock;
  const auto time_s = [](Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
  };

  // Serial reference: the one-rank-at-a-time HisparBuilder. (BenchWorld
  // already billed its own list build on this engine; count the delta.)
  const std::uint64_t billed_before = world.engine->queries_issued();
  auto started = Clock::now();
  core::HisparBuilder builder(*world.web, *world.toplists, *world.engine);
  std::string serial_bytes;
  for (std::uint64_t week = 0; week < weeks; ++week)
    serial_bytes += core::to_csv(builder.build(config.list, week));
  const double serial_s = time_s(started);
  const std::uint64_t serial_digest = util::fnv1a(serial_bytes);
  world.metrics.gauge("bench.listbuild.serial_s") = serial_s;

  util::TextTable table(
      {"runner", "seconds", "speedup", "queries", "lists match"});
  table.add_row({"serial builder", util::TextTable::num(serial_s, 3), "-",
                 std::to_string(world.engine->queries_issued() -
                                billed_before),
                 "reference"});

  double campaign_1job_s = 0.0;
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    config.jobs = jobs;
    core::ListBuildCampaign campaign(*world.web, *world.toplists, config);
    started = Clock::now();
    const core::ListBuildResult result = campaign.run();
    const double elapsed_s = time_s(started);
    if (jobs == 1) campaign_1job_s = elapsed_s;
    const std::uint64_t digest = lists_digest(result);
    std::uint64_t queries = 0;
    for (const auto& stats : result.weeks)
      queries += stats.queries_billed + stats.speculative_queries;
    table.add_row({"campaign, jobs " + std::to_string(jobs),
                   util::TextTable::num(elapsed_s, 3),
                   util::TextTable::num(campaign_1job_s / elapsed_s, 2) + "x",
                   std::to_string(queries),
                   digest == serial_digest ? "yes" : "NO (BUG)"});
    world.metrics.gauge("bench.listbuild.jobs_" + std::to_string(jobs) +
                        "_s") = elapsed_s;
    if (digest != serial_digest)
      ++world.metrics.counter("bench.listbuild.digest_mismatches");
  }

  // Fault path: retries, quarantines and the billing they leave behind.
  config.jobs = 8;
  config.fault_profile = net::SearchFaultProfile::parse("uniform:0.05");
  core::ListBuildCampaign faulty(*world.web, *world.toplists, config);
  started = Clock::now();
  const core::ListBuildResult result = faulty.run();
  const double faulty_s = time_s(started);
  std::uint64_t retries = 0, quarantined = 0;
  for (const auto& stats : result.weeks) {
    retries += stats.retries;
    quarantined += stats.sites_quarantined;
  }
  table.add_row({"faulty 5%, jobs 8", util::TextTable::num(faulty_s, 3), "-",
                 std::to_string(retries) + " retries",
                 std::to_string(quarantined) + " quarantined"});
  world.metrics.gauge("bench.listbuild.faulty_s") = faulty_s;

  std::cout << table;
  std::cout << "\n(speedup saturates at min(hardware threads, shards); the "
               "serial row includes no wave overshoot, so its query count "
               "is the §7 lower bound)\n";
  world.write_bench_json("listbuild");
  return 0;
}
