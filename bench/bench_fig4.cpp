// Figure 4: cacheability, CDN delivery and content mix (§5.1, §5.2).
//  4a: 66% of H1K sites have landing pages with more non-cacheable
//      objects (median +40%); cacheable *bytes* fractions are similar.
//  4b: 57% of sites deliver a larger byte fraction via CDNs on the
//      landing page (median +13%); X-Cache hits 16% higher for landing.
//  4c: content mix medians — JS 45%->50% (L->I), IMG -36%, HTML/CSS +22%.
#include "common.h"
#include "web/mime.h"

using namespace hispar;

int main() {
  bench::BenchWorld world;

  // --- 4a ---
  bench::print_header(
      "Figure 4a — non-cacheable objects (L - I)",
      "66% of sites: landing has more non-cacheable objects; +40% median; "
      "cacheable-bytes fraction similar across page types");
  const auto noncacheable =
      core::compare_metric(world.sites, core::metric::noncacheable);
  const auto ks_nc =
      core::ks_landing_vs_internal(world.sites, core::metric::noncacheable);
  std::cout << "landing more non-cacheable for "
            << util::TextTable::pct(noncacheable.fraction_landing_greater())
            << " of sites; median ratio "
            << util::TextTable::num(
                   util::median(std::invoke([&] {
                     std::vector<double> r;
                     for (std::size_t i = 0; i < noncacheable.landing.size();
                          ++i)
                       if (noncacheable.internal_median[i] > 0)
                         r.push_back(noncacheable.landing[i] /
                                     noncacheable.internal_median[i]);
                     return r;
                   })),
                   2)
            << "  KS D=" << util::TextTable::num(ks_nc.statistic, 3) << "\n";
  std::cout << "delta CDF (objects): "
            << bench::cdf_summary(noncacheable.deltas()) << "\n";
  const auto cacheable_frac = core::compare_metric(
      world.sites,
      [](const core::PageMetrics& m) { return m.cacheable_bytes_fraction; });
  std::cout << "cacheable-bytes fraction medians: landing "
            << util::TextTable::pct(util::median(cacheable_frac.landing))
            << " vs internal "
            << util::TextTable::pct(util::median(cacheable_frac.internal_median))
            << "  (paper: similar)\n\n";

  // --- 4b ---
  bench::print_header(
      "Figure 4b — CDN-delivered byte fraction (L - I)",
      "57% of sites: landing higher (+13% median); landing X-Cache hits "
      "16% higher than internal");
  const auto cdn = core::compare_metric(world.sites,
                                        core::metric::cdn_bytes_fraction);
  std::cout << "landing fraction higher for "
            << util::TextTable::pct(cdn.fraction_landing_greater())
            << " of sites; medians: landing "
            << util::TextTable::pct(util::median(cdn.landing)) << " vs internal "
            << util::TextTable::pct(util::median(cdn.internal_median)) << "\n";
  const auto x_cache = core::x_cache_summary(world.sites);
  std::cout << "X-Cache hit ratio: landing "
            << util::TextTable::pct(x_cache.landing_hit_ratio) << " vs internal "
            << util::TextTable::pct(x_cache.internal_hit_ratio) << "  (landing "
            << util::TextTable::pct(x_cache.landing_hit_ratio /
                                        std::max(1e-9,
                                                 x_cache.internal_hit_ratio) -
                                    1.0)
            << " higher; paper: 16%)\n\n";

  // --- 4c ---
  bench::print_header(
      "Figure 4c — content mix (fraction of total bytes, medians)",
      "JS: L 45% / I 50%; IMG: L 36% above I; HTML/CSS: I 22% above L; "
      "other six categories ~6-7% combined");
  const auto mix = core::content_mix(world.sites);
  util::TextTable table({"category", "landing", "internal", "I/L - 1"});
  for (auto category :
       {web::MimeCategory::kJavaScript, web::MimeCategory::kImage,
        web::MimeCategory::kHtmlCss, web::MimeCategory::kJson,
        web::MimeCategory::kFont, web::MimeCategory::kVideo}) {
    const auto i = static_cast<std::size_t>(category);
    table.add_row(
        {std::string(web::to_string(category)),
         util::TextTable::pct(mix.landing_median[i]),
         util::TextTable::pct(mix.internal_median[i]),
         util::TextTable::pct(mix.internal_median[i] /
                                  std::max(1e-9, mix.landing_median[i]) -
                              1.0)});
  }
  std::cout << table;
  return 0;
}
