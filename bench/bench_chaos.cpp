// Cost of the chaos engine and its defense layer.
//
// The chaos contract has two halves with a price tag each:
//  * an *empty* schedule must be free — same bytes, and no measurable
//    slowdown, as a campaign built before chaos support existed;
//  * an *active* schedule pays for window lookups, strike draws,
//    breaker bookkeeping and hedged lookups on every fetch, and that
//    overhead must stay a small multiple of the plain campaign (the
//    soak harness asserts correctness; this bench watches the cost).
//
// Rows: the plain campaign (reference), the same campaign with
// chaos parsed from "none" (must be byte-identical), a single-origin
// incident, and the full multi-scope storm. Columns report wall time,
// the slowdown against plain, byte identity where it is required, and
// how the campaign degraded (ok/degraded/quarantined sites) so a
// defense regression (breakers stop saving sites) is visible next to
// its cost.
//
// HISPAR_SITES scales the list (default 120); HISPAR_JOBS the worker
// threads of the campaigns.
#include <chrono>
#include <sstream>

#include "common.h"
#include "core/serialization.h"
#include "net/outage.h"
#include "util/rng.h"

namespace {

using namespace hispar;

std::uint64_t csv_digest(const std::vector<core::SiteObservation>& sites) {
  std::ostringstream csv;
  core::write_measure_csv(csv, sites);
  return util::fnv1a(csv.str());
}

}  // namespace

int main() {
  bench::print_header(
      "chaos engine cost",
      "correlated outages (CDN incidents, resolver flakes) are the "
      "failure mode a weekly campaign actually meets; the defenses that "
      "survive them must cost nothing when disarmed");

  const std::size_t sites = bench::env_sites(120);
  bench::BenchWorld world(/*run_campaign=*/false, sites);
  const std::string victim = world.h1k.sets.front().domain;

  core::CampaignConfig base;
  base.landing_loads = 10;
  base.jobs = bench::env_jobs();

  using Clock = std::chrono::steady_clock;
  const auto time_s = [](Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
  };

  struct Row {
    const char* name;
    std::string profile;
    bool must_match_plain;
  };
  const Row rows[] = {
      {"chaos \"none\"", "none", true},
      {"origin incident",
       "origin:domain=" + victim + ",start_s=0,dur_s=600,kind=http_5xx,sev=0.9",
       false},
      {"multi-scope storm",
       "origin:domain=" + victim +
           ",mtbf_s=200,mttr_s=100,kind=truncation,sev=0.8;"
           "resolver:mtbf_s=240,mttr_s=60,kind=dns_timeout,sev=0.7;"
           "cdn:provider=0,start_s=30,dur_s=600,kind=stall,sev=0.9;"
           "cdn:provider=1,mtbf_s=300,mttr_s=120,kind=connection_reset,"
           "sev=0.6",
       false},
  };

  auto started = Clock::now();
  core::MeasurementCampaign plain(*world.web, base);
  const auto plain_sites = plain.run(world.h1k);
  const double plain_s = time_s(started);
  const std::uint64_t plain_digest = csv_digest(plain_sites);
  world.metrics.gauge("bench.chaos.plain_s") = plain_s;

  util::TextTable table(
      {"campaign", "seconds", "vs plain", "bytes", "ok/degr/quar"});
  {
    const core::CampaignSummary summary =
        core::summarize_campaign(plain_sites);
    table.add_row({"plain campaign", util::TextTable::num(plain_s, 3),
                   "1.00x", "reference",
                   std::to_string(summary.sites_ok) + "/" +
                       std::to_string(summary.sites_degraded) + "/" +
                       std::to_string(summary.sites_quarantined)});
  }

  for (const Row& row : rows) {
    core::CampaignConfig config = base;
    config.chaos = net::OutageSchedule::parse(row.profile);
    started = Clock::now();
    core::MeasurementCampaign campaign(*world.web, config);
    const auto observed = campaign.run(world.h1k);
    const double elapsed_s = time_s(started);
    const std::uint64_t digest = csv_digest(observed);
    const core::CampaignSummary summary = core::summarize_campaign(observed);

    std::string bytes = "-";
    if (row.must_match_plain)
      bytes = digest == plain_digest ? "identical" : "DIFFER (BUG)";
    table.add_row({row.name, util::TextTable::num(elapsed_s, 3),
                   util::TextTable::num(elapsed_s / plain_s, 2) + "x", bytes,
                   std::to_string(summary.sites_ok) + "/" +
                       std::to_string(summary.sites_degraded) + "/" +
                       std::to_string(summary.sites_quarantined)});

    const std::string key =
        row.must_match_plain
            ? "off"
            : (row.profile.find(';') == std::string::npos ? "incident"
                                                          : "storm");
    world.metrics.gauge("bench.chaos." + key + "_s") = elapsed_s;
    world.metrics.gauge("bench.chaos." + key + "_quarantined") =
        static_cast<double>(summary.sites_quarantined);
    if (row.must_match_plain && digest != plain_digest)
      ++world.metrics.counter("bench.chaos.digest_mismatches");
  }

  std::cout << table;
  std::cout << "\n(chaos \"none\" must stay at ~1.00x and byte-identical: "
               "the whole defense layer is gated on an armed schedule. "
               "Storm overhead buys per-stage oracle consults, breaker "
               "bookkeeping and hedged lookups on every fetch)\n";
  world.write_bench_json("chaos");
  return 0;
}
