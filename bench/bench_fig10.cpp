// Figure 10 (Appendix A):
//  10a: rank-bin medians of d(non-cacheable objects) — about +24 around
//       ranks 200-300, falling to about -8 at ranks 900-1000;
//  10b: d(unique domains) — about +11 mid-rank to -2 at the bottom;
//  10c: PLT-delta CDFs by Alexa category — Shopping sites follow the
//       global trend (landing faster for ~77%), World sites reverse it
//       (landing slower for ~70%) when measured from the U.S.
#include "common.h"

using namespace hispar;

int main() {
  bench::BenchWorld world;

  bench::print_header(
      "Figure 10a/10b — rank-bin medians (trend reversals)",
      "d(non-cacheables): +24 @200-300 -> -8 @900-1000; "
      "d(domains): +11 -> -2");
  const auto noncacheable_bins =
      core::delta_by_rank_bin(world.sites, core::metric::noncacheable);
  const auto domain_bins =
      core::delta_by_rank_bin(world.sites, core::metric::unique_domains);
  util::TextTable table({"rank bin", "dNonCacheable", "dDomains"});
  for (std::size_t bin = 0; bin < noncacheable_bins.size(); ++bin) {
    const auto lo = bin * 100 + 1;
    const auto hi = (bin + 1) * 100;
    table.add_row({std::to_string(lo) + "-" + std::to_string(hi),
                   util::TextTable::num(noncacheable_bins[bin], 1),
                   util::TextTable::num(domain_bins[bin], 1)});
  }
  std::cout << table << "\n";

  bench::print_header(
      "Figure 10c — PLT delta by category (World vs Shopping)",
      "World: landing slower for ~70% of sites; Shopping: landing faster "
      "for ~77%");
  const auto world_deltas =
      core::plt_delta_for_category(world.sites, web::SiteCategory::kWorld);
  const auto shopping_deltas =
      core::plt_delta_for_category(world.sites, web::SiteCategory::kShopping);
  const auto report = [](const char* label,
                         const std::vector<double>& deltas) {
    if (deltas.empty()) {
      std::cout << label << ": no sites in category\n";
      return;
    }
    std::cout << label << " (" << deltas.size() << " sites): landing slower "
              << "for "
              << util::TextTable::pct(1.0 -
                                      util::fraction_below(deltas, 0.0))
              << ";  CDF(s): " << bench::cdf_summary(deltas) << "\n";
  };
  report("World   ", world_deltas);
  report("Shopping", shopping_deltas);
  return 0;
}
