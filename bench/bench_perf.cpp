// Component micro-benchmarks (google-benchmark): page generation, page
// loading, crawling, list building, the ad-block matcher and KS test.
// These guard the simulator's throughput — a full H1K campaign is ~29k
// page loads and must stay in the tens of seconds.
//
// After the micro-benches, main() runs a hot-path wall-clock pass (page
// materialization, repeated loads, and a campaign slice sized by
// HISPAR_SITES) and exports its timings as BENCH_perf.json when
// HISPAR_BENCH_JSON is set; diff two of those with tools/bench_diff to
// quantify a performance change (see README "Benchmarking").
#include <benchmark/benchmark.h>

#include <chrono>

#include "common.h"

#include "browser/adblock.h"
#include "browser/loader.h"
#include "core/hispar.h"
#include "search/crawler.h"
#include "search/engine.h"
#include "util/ks_test.h"
#include "web/generator.h"

namespace {

using namespace hispar;

const web::SyntheticWeb& shared_web() {
  static web::SyntheticWeb webx({3000, 42, 2000, true});
  return webx;
}

void BM_PageGeneration(benchmark::State& state) {
  const auto& site = shared_web().site_by_rank(
      static_cast<std::size_t>(state.range(0)));
  std::size_t index = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(site.page(index));
    index = index % 500 + 1;
  }
}
BENCHMARK(BM_PageGeneration)->Arg(10)->Arg(500);

void BM_PageLoad(benchmark::State& state) {
  const auto& webx = shared_web();
  net::LatencyModel latency;
  cdn::CdnHierarchy cdn(webx.cdn_registry(), latency);
  net::CachingResolver resolver({}, latency);
  browser::PageLoader loader(
      {&latency, &webx.cdn_registry(), &cdn, &resolver,
       net::Region::kNorthAmerica});
  const auto page = webx.site_by_rank(50).page(3);
  util::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(loader.load(page, rng.fork(rng.next())));
}
BENCHMARK(BM_PageLoad);

void BM_CrawlSite(benchmark::State& state) {
  const auto& site = shared_web().site_by_rank(100);
  search::CrawlConfig config;
  config.max_unique_pages = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(search::crawl_site(site, config));
}
BENCHMARK(BM_CrawlSite)->Arg(500)->Arg(5000);

void BM_SiteQuery(benchmark::State& state) {
  const auto& webx = shared_web();
  search::SearchEngine engine(webx);
  const std::string domain = webx.domains()[99];
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.site_query(domain, 49, 0));
}
BENCHMARK(BM_SiteQuery);

void BM_AdblockMatch(benchmark::State& state) {
  const auto blocker = browser::AdBlocker::easylist_lite();
  const std::string url =
      "https://securepubads.g.doubleclick.net/track/123-4";
  for (auto _ : state) benchmark::DoNotOptimize(blocker.matches(url));
}
BENCHMARK(BM_AdblockMatch);

void BM_KsTest(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> a(10000), b(19000);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal(0.1, 1.1);
  for (auto _ : state) benchmark::DoNotOptimize(util::ks_two_sample(a, b));
}
BENCHMARK(BM_KsTest);

// Wall-clock hot-path pass. Unlike the micro-benches above (per-call
// latency under a fresh state), this times the shapes a campaign
// actually runs — many pages of many sites, repeated loads through one
// loader, and a full campaign slice — so pooled/cached paths show their
// real effect.
void run_hotpath_pass() {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_ms = [](Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
  };
  obs::MetricsRegistry metrics;
  const auto& webx = shared_web();

  // Page materialization across sites.
  auto started = Clock::now();
  constexpr std::size_t kGenSites = 400;
  constexpr std::size_t kGenPagesPerSite = 4;
  for (std::size_t rank = 1; rank <= kGenSites; ++rank) {
    const auto& site = webx.site_by_rank(rank);
    for (std::size_t index = 1; index <= kGenPagesPerSite; ++index)
      benchmark::DoNotOptimize(site.page(index));
  }
  metrics.gauge("perf.page_generation_ms") = elapsed_ms(started);
  metrics.gauge("perf.pages_generated") =
      static_cast<double>(kGenSites * kGenPagesPerSite);

  // Repeated loads through one loader (scratch reuse path).
  net::LatencyModel latency;
  cdn::CdnHierarchy cdn(webx.cdn_registry(), latency);
  net::CachingResolver resolver({}, latency);
  browser::PageLoader loader({&latency, &webx.cdn_registry(), &cdn, &resolver,
                              net::Region::kNorthAmerica});
  const auto page = webx.site_by_rank(50).page(3);
  util::Rng rng(7);
  started = Clock::now();
  constexpr std::size_t kLoads = 3000;
  for (std::size_t i = 0; i < kLoads; ++i)
    benchmark::DoNotOptimize(loader.load(page, rng.fork(rng.next())));
  metrics.gauge("perf.page_load_ms") = elapsed_ms(started);
  metrics.gauge("perf.page_loads") = static_cast<double>(kLoads);

  // Campaign slice (sized by HISPAR_SITES, default 240 to mirror
  // bench_parallel; HISPAR_JOBS sets workers). BenchWorld times its own
  // phases — fold them in under the perf.* names bench_diff tabulates.
  hispar::bench::BenchWorld world(/*run_campaign=*/true,
                                  hispar::bench::env_sites(240));
  metrics.gauge("perf.web_build_ms") =
      world.metrics.gauge_or("bench.web_build_ms");
  metrics.gauge("perf.list_build_ms") =
      world.metrics.gauge_or("bench.list_build_ms");
  metrics.gauge("perf.campaign_ms") =
      world.metrics.gauge_or("bench.campaign_ms");
  metrics.gauge("perf.campaign_sites") = world.metrics.gauge_or("bench.sites");

  hispar::bench::write_bench_json(metrics, "perf");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_hotpath_pass();
  return 0;
}
