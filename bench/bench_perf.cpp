// Component micro-benchmarks (google-benchmark): page generation, page
// loading, crawling, list building, the ad-block matcher and KS test.
// These guard the simulator's throughput — a full H1K campaign is ~29k
// page loads and must stay in the tens of seconds.
#include <benchmark/benchmark.h>

#include "browser/adblock.h"
#include "browser/loader.h"
#include "core/hispar.h"
#include "search/crawler.h"
#include "search/engine.h"
#include "util/ks_test.h"
#include "web/generator.h"

namespace {

using namespace hispar;

const web::SyntheticWeb& shared_web() {
  static web::SyntheticWeb webx({3000, 42, 2000, true});
  return webx;
}

void BM_PageGeneration(benchmark::State& state) {
  const auto& site = shared_web().site_by_rank(
      static_cast<std::size_t>(state.range(0)));
  std::size_t index = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(site.page(index));
    index = index % 500 + 1;
  }
}
BENCHMARK(BM_PageGeneration)->Arg(10)->Arg(500);

void BM_PageLoad(benchmark::State& state) {
  const auto& webx = shared_web();
  net::LatencyModel latency;
  cdn::CdnHierarchy cdn(webx.cdn_registry(), latency);
  net::CachingResolver resolver({}, latency);
  browser::PageLoader loader(
      {&latency, &webx.cdn_registry(), &cdn, &resolver,
       net::Region::kNorthAmerica});
  const auto page = webx.site_by_rank(50).page(3);
  util::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(loader.load(page, rng.fork(rng.next())));
}
BENCHMARK(BM_PageLoad);

void BM_CrawlSite(benchmark::State& state) {
  const auto& site = shared_web().site_by_rank(100);
  search::CrawlConfig config;
  config.max_unique_pages = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(search::crawl_site(site, config));
}
BENCHMARK(BM_CrawlSite)->Arg(500)->Arg(5000);

void BM_SiteQuery(benchmark::State& state) {
  const auto& webx = shared_web();
  search::SearchEngine engine(webx);
  const std::string domain = webx.domains()[99];
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.site_query(domain, 49, 0));
}
BENCHMARK(BM_SiteQuery);

void BM_AdblockMatch(benchmark::State& state) {
  const auto blocker = browser::AdBlocker::easylist_lite();
  const std::string url =
      "https://securepubads.g.doubleclick.net/track/123-4";
  for (auto _ : state) benchmark::DoNotOptimize(blocker.matches(url));
}
BENCHMARK(BM_AdblockMatch);

void BM_KsTest(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> a(10000), b(19000);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal(0.1, 1.1);
  for (auto _ : state) benchmark::DoNotOptimize(util::ks_two_sample(a, b));
}
BENCHMARK(BM_KsTest);

}  // namespace

BENCHMARK_MAIN();
