// Figure 3:
//  3a: SpeedIndex CDFs over Ht30 — landing content displays 14% faster
//      in the median (KS D = 0.01 in the paper's notation).
//  3b/3c: limited exhaustive crawl of five sites (WP/TW/NY/HS/AC):
//      internal pages differ from landing pages and from one another in
//      object count and size. (Crawl >= 5000 unique URLs per site,
//      sample 500, fetch once; landing fetched 10x.)
#include "common.h"
#include "search/crawler.h"
#include "util/ks_test.h"

using namespace hispar;

int main() {
  // --- 3a: SpeedIndex on Ht30 ---
  bench::BenchWorld world;
  const auto ht30 = world.top(30);

  bench::print_header("Figure 3a — SpeedIndex (Ht30)",
                      "landing content displays 14% faster in the median");
  const double landing_si =
      util::median(core::landing_values(ht30, core::metric::speed_index_ms));
  const double internal_si =
      util::median(core::internal_values(ht30, core::metric::speed_index_ms));
  const auto ks = core::ks_landing_vs_internal(ht30,
                                               core::metric::speed_index_ms);
  std::cout << "median SpeedIndex: landing "
            << util::TextTable::num(landing_si / 1000.0, 2) << " s, internal "
            << util::TextTable::num(internal_si / 1000.0, 2) << " s  ->  "
            << "landing displays "
            << util::TextTable::pct(1.0 - landing_si / internal_si)
            << " faster (paper: 14%), KS D="
            << util::TextTable::num(ks.statistic, 3)
            << " p=" << util::TextTable::num(ks.p_value, 4) << "\n\n";

  // --- 3b/3c: limited exhaustive crawl ---
  bench::print_header(
      "Figure 3b/3c — limited exhaustive crawl (WP, TW, NY, HS, AC)",
      "large within-site variation in #objects and page size; internal "
      "pages differ from landing pages and from each other");

  core::CampaignConfig crawl_campaign;
  crawl_campaign.landing_loads = 10;
  core::MeasurementCampaign campaign(*world.web, crawl_campaign);

  util::TextTable table({"site", "L #obj", "I #obj p25/p50/p75/p95",
                         "L size MB", "I size MB p25/p50/p75/p95"});
  for (web::CrawlSite id :
       {web::CrawlSite::kWikipedia, web::CrawlSite::kTwitter,
        web::CrawlSite::kNyTimes, web::CrawlSite::kHowStuffWorks,
        web::CrawlSite::kAcademic}) {
    const web::WebSite& site = world.web->crawl_site(id);

    // Crawl until >= 5000 unique URLs, then sample 500 (§4).
    search::CrawlConfig config;
    config.max_unique_pages = 5000;
    const auto crawl = search::crawl_site(site, config);
    util::Rng sampler(util::fnv1a(site.domain()) ^ 0x5a5a);
    std::vector<std::size_t> sample;
    for (int i = 0; i < 500 && !crawl.pages.empty(); ++i)
      sample.push_back(crawl.pages[static_cast<std::size_t>(sampler.uniform_int(
          0, static_cast<std::int64_t>(crawl.pages.size()) - 1))]);

    const auto observation = campaign.measure_site(site, sample);
    std::vector<double> objects, megabytes;
    for (const auto& metrics : observation.internals) {
      objects.push_back(metrics.objects);
      megabytes.push_back(metrics.bytes / 1e6);
    }
    const auto quartiles = [](std::vector<double>& v) {
      return util::TextTable::num(util::quantile(v, 0.25), 0) + "/" +
             util::TextTable::num(util::quantile(v, 0.50), 0) + "/" +
             util::TextTable::num(util::quantile(v, 0.75), 0) + "/" +
             util::TextTable::num(util::quantile(v, 0.95), 0);
    };
    const auto quartiles_f = [](std::vector<double>& v) {
      return util::TextTable::num(util::quantile(v, 0.25), 1) + "/" +
             util::TextTable::num(util::quantile(v, 0.50), 1) + "/" +
             util::TextTable::num(util::quantile(v, 0.75), 1) + "/" +
             util::TextTable::num(util::quantile(v, 0.95), 1);
    };
    table.add_row({std::string(web::crawl_site_label(id)),
                   util::TextTable::num(observation.landing.objects, 0),
                   quartiles(objects),
                   util::TextTable::num(observation.landing.bytes / 1e6, 1),
                   quartiles_f(megabytes)});
  }
  std::cout << table;
  std::cout << "\n(A random 19-page subset leaves medians within the "
               "interquartile band — §4's argument that N=19 suffices.)\n";
  return 0;
}
