// Ablations of the design choices DESIGN.md calls out.
//  1. Which mechanisms create the landing/internal PLT gap? Disable, in
//     turn: CDN popularity-driven warmth, connection reuse, resource
//     hints — and measure the gap each time.
//  2. Search-selected vs uniformly random internal pages: §4 argues a
//     random subset would not change the medians much; we quantify it.
#include "common.h"

using namespace hispar;

namespace {

struct GapResult {
  double fraction_landing_faster = 0.0;
  double median_delta_ms = 0.0;
};

GapResult plt_gap(const web::SyntheticWeb& webx, const core::HisparList& list,
                  browser::LoadOptions options) {
  core::CampaignConfig config;
  config.landing_loads = 5;
  config.load_options = options;
  config.jobs = hispar::bench::env_jobs();
  core::MeasurementCampaign campaign(webx, config);
  const auto sites = campaign.run(list);
  const auto comparison = core::compare_metric(sites, core::metric::plt_ms);
  return {1.0 - comparison.fraction_landing_greater(),
          util::median(comparison.deltas())};
}

}  // namespace

int main() {
  const std::size_t sites = bench::env_sites(300);
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  bench::print_header(
      "Ablation 1 — what creates the landing-page speed advantage?",
      "each row disables one mechanism; the PLT gap should shrink");

  util::TextTable table(
      {"configuration", "% sites landing faster", "median dPLT (ms)"});
  const auto row = [&](const char* label, browser::LoadOptions options) {
    const auto gap = plt_gap(*world.web, world.h1k, options);
    table.add_row({label,
                   util::TextTable::pct(gap.fraction_landing_faster),
                   util::TextTable::num(gap.median_delta_ms, 1)});
  };
  browser::LoadOptions base;
  row("full model", base);
  {
    browser::LoadOptions options = base;
    options.model_cdn_warmth = false;
    row("no CDN popularity warmth", options);
  }
  {
    browser::LoadOptions options = base;
    options.use_resource_hints = false;
    row("no resource hints", options);
  }
  {
    browser::LoadOptions options = base;
    options.reuse_connections = false;
    row("no connection reuse", options);
  }
  {
    browser::LoadOptions options = base;
    options.transport_override = net::TransportProtocol::kQuic0Rtt;
    row("QUIC 0-RTT everywhere (S5.6's optimization)", options);
  }
  std::cout << table << "\n";

  bench::print_header(
      "Ablation 2 — search-selected vs random internal pages",
      "S4: a random 19-page subset would not change the medians much");
  // Build a random-page variant of the same list.
  core::HisparList random_list = world.h1k;
  util::Rng rng(99);
  for (auto& set : random_list.sets) {
    const web::WebSite* site = world.web->find_site(set.domain);
    const std::size_t universe = site->internal_page_count();
    for (std::size_t i = 1; i < set.page_indices.size(); ++i) {
      set.page_indices[i] = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(universe)));
      set.urls[i] = site->page_url(set.page_indices[i]).str();
    }
  }
  const auto measure = [&](const core::HisparList& list) {
    core::CampaignConfig config;
    config.landing_loads = 3;
    config.jobs = hispar::bench::env_jobs();
    core::MeasurementCampaign campaign(*world.web, config);
    return campaign.run(list);
  };
  const auto search_sites = measure(world.h1k);
  const auto random_sites = measure(random_list);
  util::TextTable table2({"selection", "median I size MB",
                          "median I #objects", "% sites L larger"});
  const auto row2 = [&](const char* label,
                        const std::vector<core::SiteObservation>& sites_obs) {
    const auto size_cmp = core::compare_metric(sites_obs, core::metric::bytes);
    table2.add_row(
        {label,
         util::TextTable::num(util::median(size_cmp.internal_median) / 1e6, 2),
         util::TextTable::num(
             util::median(core::compare_metric(sites_obs,
                                               core::metric::objects)
                              .internal_median),
             0),
         util::TextTable::pct(size_cmp.fraction_landing_greater())});
  };
  row2("search-selected (Hispar)", search_sites);
  row2("uniform random pages", random_sites);
  std::cout << table2;
  std::cout << "\n(popular pages skew slightly heavier than the uniform "
               "draw, but the medians move little — supporting §4)\n";
  return 0;
}
