// §7: the economics of building Hispar with search-engine APIs.
//  * Google charges $5 / 1000 queries, Bing $3 / 1000;
//  * a 100,000-URL list needs >= 10,000 queries ($50 lower bound), and
//    because many queries return < 10 unique URLs the real cost is ~$70;
//  * covering a typical major-revision study (500 sites x 50 URLs) costs
//    < $20.
#include "common.h"

using namespace hispar;

int main() {
  const std::size_t h2k_sites = bench::env_sites(2000);
  bench::BenchWorld world(/*run_campaign=*/false,
                          std::min<std::size_t>(h2k_sites, 2000));

  bench::print_header(
      "§7 — cost of generating Hispar",
      "Google $5/1k queries vs Bing $3/1k; H2K (100k URLs) ~ $70/list; "
      "a 500-site study's internal pages < $20");

  util::TextTable table({"list", "sites", "URLs", "queries", "Google $",
                         "Bing $"});
  const auto run = [&](const char* name, std::size_t sites,
                       std::size_t urls_per_site,
                       std::size_t min_internal) {
    core::HisparBuilder builder(*world.web, *world.toplists, *world.engine);
    core::HisparConfig config;
    config.name = name;
    config.target_sites = sites;
    config.urls_per_site = urls_per_site;
    config.min_internal_results = min_internal;
    const auto list = builder.build(config, 0);
    const auto& stats = builder.last_build_stats();
    const double google_usd =
        static_cast<double>(stats.queries_issued) *
        search::query_price_usd(search::SearchProvider::kGoogle);
    const double bing_usd =
        static_cast<double>(stats.queries_issued) *
        search::query_price_usd(search::SearchProvider::kBing);
    table.add_row({name, std::to_string(list.sets.size()),
                   std::to_string(list.total_urls()),
                   std::to_string(stats.queries_issued),
                   util::TextTable::num(google_usd, 2),
                   util::TextTable::num(bing_usd, 2)});
    return stats;
  };

  run("H2K (50 URLs/site)",
      std::min<std::size_t>(h2k_sites, world.web->site_count() / 3 * 2), 50,
      10);
  run("H1K (20 URLs/site)", std::min<std::size_t>(1000, h2k_sites), 20, 5);
  run("500-site study", 500, 50, 10);
  std::cout << table;

  std::cout << "\nlower bound for 100,000 URLs at 10 results/query: 10,000 "
               "queries = $50 (Google);\nshort result pages push the real "
               "cost above the bound, as the paper observes (~$70).\n";
  return 0;
}
