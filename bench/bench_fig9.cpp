// Figure 9 (Appendix A): per-rank-bin medians of the landing-internal
// deltas for PLT, page size and object count. Key shape:
//  9a: dPLT negative for most bins (landing faster), positive (up to
//      ~+100 ms) around ranks 400-600;
//  9b: dSize positive everywhere, peaking mid-rank;
//  9c: dObjects positive everywhere, peaking mid-rank (~+25).
#include "common.h"

using namespace hispar;

int main() {
  bench::BenchWorld world;

  bench::print_header(
      "Figure 9 — rank-bin medians of L - I deltas",
      "9a: dPLT < 0 for most bins, > 0 around ranks 400-600; "
      "9b/9c: dSize and dObjects positive, peaking mid-rank");

  const auto plt_bins =
      core::delta_by_rank_bin(world.sites, core::metric::plt_ms);
  const auto size_bins =
      core::delta_by_rank_bin(world.sites, core::metric::bytes);
  const auto object_bins =
      core::delta_by_rank_bin(world.sites, core::metric::objects);

  util::TextTable table({"rank bin", "dPLT (s)", "dSize (MB)", "dObjects"});
  for (std::size_t bin = 0; bin < plt_bins.size(); ++bin) {
    const auto lo = bin * 100 + 1;
    const auto hi = (bin + 1) * 100;
    table.add_row({std::to_string(lo) + "-" + std::to_string(hi),
                   util::TextTable::num(plt_bins[bin] / 1000.0, 3),
                   util::TextTable::num(size_bins[bin] / 1e6, 2),
                   util::TextTable::num(object_bins[bin], 1)});
  }
  std::cout << table;

  int negative_bins = 0;
  int positive_mid = 0;
  for (std::size_t bin = 0; bin < plt_bins.size(); ++bin) {
    if (plt_bins[bin] < 0) ++negative_bins;
    if (bin >= 3 && bin <= 5 && plt_bins[bin] > 0) ++positive_mid;
  }
  std::cout << "\ndPLT bins negative: " << negative_bins
            << "/10 (paper: most);  positive among mid bins (400-600): "
            << positive_mid << " (paper: reversal present)\n";
  return 0;
}
