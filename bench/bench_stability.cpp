// §3 stability of H2K:
//  * ~20% mean weekly change in the web sites of H2K (inherited from the
//    Alexa top-5K bootstrap);
//  * ~30% weekly churn in the internal-page URLs (bottom level);
//  * an Alexa subset of H2K's size shows ~41% mean weekly change;
//  * Alexa Top-5K-analogue shows ~10% daily change (Scheitle et al.).
#include "common.h"
#include "toplist/providers.h"

using namespace hispar;

int main() {
  const std::size_t sites = bench::env_sites(400);  // H2K-scale analogue
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  bench::print_header(
      "§3 — stability of Hispar (10 weekly rebuilds)",
      "H2K sites churn ~20%/week; internal URLs churn ~30%/week; a "
      "same-size Alexa subset churns ~41%/week; Alexa top-5K ~10%/day");

  core::HisparBuilder builder(*world.web, *world.toplists, *world.engine);
  core::HisparConfig config;
  config.name = "H2K-analogue";
  config.target_sites = sites;
  config.urls_per_site = 50;  // H2K: 1 landing + up to 49 internal
  config.min_internal_results = 10;

  constexpr int kWeeks = 10;
  std::vector<core::HisparList> weekly;
  weekly.reserve(kWeeks);
  for (int week = 0; week < kWeeks; ++week)
    weekly.push_back(builder.build(config, static_cast<std::uint64_t>(week)));

  double site_total = 0.0, url_total = 0.0;
  for (int week = 0; week + 1 < kWeeks; ++week) {
    site_total += core::site_churn(weekly[static_cast<std::size_t>(week)],
                                   weekly[static_cast<std::size_t>(week + 1)]);
    url_total += core::internal_url_churn(
        weekly[static_cast<std::size_t>(week)],
        weekly[static_cast<std::size_t>(week + 1)]);
  }
  const double site_churn_mean = site_total / (kWeeks - 1);
  const double url_churn_mean = url_total / (kWeeks - 1);

  // Alexa subset of the same size as H2K: the paper compares against
  // Alexa top 100K because H2K holds 100K *URLs*; the equivalent here is
  // an Alexa slice as large as H2K's URL count (it reaches much deeper
  // into the rank tail, where scores are close and churn is high).
  toplist::TopListFactory& factory = *world.toplists;
  // (capped below the universe size: a list covering the whole universe
  // cannot churn by construction)
  const std::size_t same_size = std::min<std::size_t>(
      world.web->site_count() * 2 / 3, weekly.front().total_urls());
  double alexa_weekly = 0.0;
  for (int week = 0; week + 1 < kWeeks; ++week) {
    alexa_weekly += toplist::turnover(
        factory.weekly_list(toplist::Provider::kAlexa,
                            static_cast<std::uint64_t>(week), same_size),
        factory.weekly_list(toplist::Provider::kAlexa,
                            static_cast<std::uint64_t>(week + 1), same_size));
  }
  alexa_weekly /= (kWeeks - 1);

  double alexa_daily = 0.0;
  const std::size_t top_slice = std::min<std::size_t>(sites, 1000);
  for (int day = 0; day < 9; ++day) {
    alexa_daily += toplist::turnover(
        factory.list_on_day(toplist::Provider::kAlexa,
                            static_cast<std::uint64_t>(day), top_slice),
        factory.list_on_day(toplist::Provider::kAlexa,
                            static_cast<std::uint64_t>(day + 1), top_slice));
  }
  alexa_daily /= 9.0;

  util::TextTable table({"statistic", "measured", "paper"});
  table.add_row({"H2K weekly site churn",
                 util::TextTable::pct(site_churn_mean), "~20%"});
  table.add_row({"H2K weekly internal-URL churn",
                 util::TextTable::pct(url_churn_mean), "~30%"});
  table.add_row({"Alexa same-size-subset weekly churn",
                 util::TextTable::pct(alexa_weekly), "~41%"});
  table.add_row({"Alexa top-slice daily churn",
                 util::TextTable::pct(alexa_daily), "~10%"});
  std::cout << table;

  std::cout << "\nlist sizes: " << weekly.front().sets.size() << " sites, "
            << weekly.front().total_urls() << " URLs per week\n";
  std::cout << "(churn in internal pages is partly desirable: the list "
               "should reflect changing site content — §3)\n";
  return 0;
}
