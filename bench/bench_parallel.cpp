// Scaling curve of the sharded parallel campaign runner.
//
// Runs the same H-list campaign at 1, 2, 4 and 8 worker threads and
// reports wall-clock time, speedup and parallel efficiency. The runner
// guarantees bit-identical observations for every worker count (shard
// membership depends only on the domain hash and the shard count), which
// this bench re-verifies with a metrics digest per run.
//
// HISPAR_SITES scales the list (default 240 here; use 1000 for H1K) and
// HISPAR_SHARDS the cache-warmth shard count (default 16, so 8 workers
// still have 2 shards each to steal).
#include <chrono>
#include <cstdio>
#include <thread>

#include "common.h"
#include "core/parallel.h"

namespace {

using namespace hispar;

double digest(const std::vector<core::SiteObservation>& sites) {
  double sum = 0.0;
  for (const auto& site : sites) {
    sum += site.landing.plt_ms + site.landing.bytes +
           site.landing.dns_time_ms + site.landing.x_cache_hits;
    for (const auto& metrics : site.internals)
      sum += metrics.plt_ms + metrics.bytes + metrics.dns_time_ms;
  }
  return sum;
}

std::size_t env_shards() {
  if (const char* env = std::getenv("HISPAR_SHARDS")) {
    const long value = std::atol(env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 16;
}

}  // namespace

int main() {
  bench::print_header(
      "parallel campaign scaling",
      "sharded runner: identical observations at any worker count; "
      "campaign time drops with cores (like multi-probe platforms)");

  const std::size_t sites = bench::env_sites(240);
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  core::CampaignConfig config;
  config.landing_loads = 5;
  config.shards = env_shards();

  std::printf("hardware threads: %u, shards: %zu, sites: %zu\n\n",
              std::thread::hardware_concurrency(), config.shards,
              world.h1k.sets.size());

  util::TextTable table({"jobs", "seconds", "speedup", "efficiency",
                         "digest match"});
  double serial_s = 0.0;
  double reference_digest = 0.0;
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    config.jobs = jobs;
    core::MeasurementCampaign campaign(*world.web, config);
    const auto start = std::chrono::steady_clock::now();
    const auto observations = campaign.run(world.h1k);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double sum = digest(observations);
    if (jobs == 1) {
      serial_s = elapsed_s;
      reference_digest = sum;
    }
    table.add_row({std::to_string(jobs), util::TextTable::num(elapsed_s, 3),
                   util::TextTable::num(serial_s / elapsed_s, 2) + "x",
                   util::TextTable::pct(serial_s / elapsed_s /
                                        static_cast<double>(jobs)),
                   sum == reference_digest ? "yes" : "NO (BUG)"});
    world.metrics.gauge("bench.jobs_" + std::to_string(jobs) + "_s") =
        elapsed_s;
    if (jobs > 1 && sum != reference_digest)
      ++world.metrics.counter("bench.digest_mismatches");
  }
  std::cout << table;
  std::cout << "\n(speedup saturates at min(hardware threads, shards); on a "
               "single-core host every row runs serially)\n";
  world.write_bench_json("parallel");
  return 0;
}
