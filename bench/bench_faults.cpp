// Robustness bench: how substrate fault rates bias the paper's headline
// landing-vs-internal contrasts.
//
// The paper measured on the real Internet, where loads fail; its
// pipeline retried and discarded failures (§3.1). This bench injects
// seeded faults at increasing rates and re-runs the Fig. 2 contrast over
// the same H1K list, showing how much of the headline survives retries,
// quarantine and partial data — and how large the bias gets before the
// campaign falls apart. Deterministic: the fault streams are keyed by
// (seed, shard, domain, page, ordinal, attempt), so any HISPAR_JOBS
// value prints the same table.
#include <chrono>

#include "common.h"

#include "net/faults.h"

using namespace hispar;

int main() {
  const std::size_t sites = bench::env_sites();
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  bench::print_header(
      "Fault sweep — Fig. 2 contrast vs injected fault rate",
      "at 0% faults the contrast equals the reliable-substrate numbers; "
      "retries + quarantine keep the headline stable while failures "
      "stay rare");

  util::TextTable table({"fault rate", "ok", "degraded", "quarantined",
                         "retries", "L larger %", "L faster %",
                         "geo-mean size L/I"});
  for (const double rate : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    core::CampaignConfig config;
    config.jobs = bench::env_jobs();
    config.fault_profile = net::FaultProfile::uniform(rate);
    core::MeasurementCampaign campaign(*world.web, config);
    const auto start = std::chrono::steady_clock::now();
    const auto observations = campaign.run(world.h1k);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::string key =
        "bench.rate_" + std::to_string(static_cast<int>(rate * 100));
    world.metrics.gauge(key + "_s") = elapsed_s;

    const auto summary = core::summarize_campaign(observations);
    world.metrics.gauge(key + "_retries") =
        static_cast<double>(summary.total_retries);
    world.metrics.gauge(key + "_quarantined") =
        static_cast<double>(summary.sites_quarantined);
    const auto size = core::compare_metric(observations, core::metric::bytes);
    const auto plt = core::compare_metric(observations, core::metric::plt_ms);
    const bool usable = !size.landing.empty();
    table.add_row(
        {util::TextTable::pct(rate), std::to_string(summary.sites_ok),
         std::to_string(summary.sites_degraded),
         std::to_string(summary.sites_quarantined),
         std::to_string(summary.total_retries),
         usable ? util::TextTable::pct(size.fraction_landing_greater())
                : "n/a",
         usable ? util::TextTable::pct(1.0 - plt.fraction_landing_greater())
                : "n/a",
         usable ? util::TextTable::num(size.geomean_ratio(), 3) : "n/a"});
  }
  std::cout << table;
  world.write_bench_json("faults");
  return 0;
}
