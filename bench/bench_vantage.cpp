// Cost and payoff of multi-vantage campaigns (§3.1, §5.3).
//
// Runs the same campaign as the historical single-vantage engine, then
// as a VantageCampaign at 1, 3 and 5 vantage points, and reports
// wall-clock time, the per-vantage slowdown (the engine is a
// sequential outer loop, so N vantages should cost about N campaigns),
// and whether the 1-vantage run and every vantage-0 slice stay
// byte-identical to the plain campaign (the engine's contract). The
// payoff column is what a single vantage cannot see: the fraction of
// landing-vs-internal metric deltas whose *sign* flips somewhere
// across vantages — the paper's Fig. 10c World-category reversal,
// reproduced on purpose.
//
// HISPAR_SITES scales the list (default 120); HISPAR_JOBS the worker
// threads of each inner campaign.
#include <chrono>
#include <cstdio>

#include "common.h"
#include "core/serialization.h"
#include "core/vantage.h"
#include "net/vantage_profile.h"
#include "util/rng.h"

namespace {

using namespace hispar;

std::uint64_t csv_digest(const std::vector<core::SiteObservation>& sites) {
  std::ostringstream csv;
  core::write_measure_csv(csv, sites);
  return util::fnv1a(csv.str());
}

}  // namespace

int main() {
  bench::print_header(
      "multi-vantage campaign cost",
      "one US server shapes every absolute number (§3.1, §5.3); N "
      "vantages cost ~N campaigns and surface the sign flips a single "
      "vantage hides");

  const std::size_t sites = bench::env_sites(120);
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  core::CampaignConfig base;
  base.landing_loads = 10;
  base.jobs = bench::env_jobs();

  using Clock = std::chrono::steady_clock;
  const auto time_s = [](Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
  };

  // Reference: the plain single-vantage campaign.
  auto started = Clock::now();
  core::MeasurementCampaign plain(*world.web, base);
  const auto plain_sites = plain.run(world.h1k);
  const double plain_s = time_s(started);
  const std::uint64_t plain_digest = csv_digest(plain_sites);
  world.metrics.gauge("bench.vantage.single_s") = plain_s;

  util::TextTable table({"runner", "seconds", "s/vantage", "vantage-0 bytes",
                         "sign-flip metrics"});
  table.add_row({"plain campaign", util::TextTable::num(plain_s, 3),
                 util::TextTable::num(plain_s, 3), "reference", "-"});

  for (std::size_t vantages : {1u, 3u, 5u}) {
    core::VantageCampaignConfig config;
    config.base = base;
    config.profiles = net::VantageProfile::default_vantages(vantages);
    core::VantageCampaign campaign(*world.web, config);
    started = Clock::now();
    const core::VantageRunResult result = campaign.run(world.h1k);
    const double elapsed_s = time_s(started);

    const bool home_identical =
        csv_digest(result.observations[0]) == plain_digest;
    const auto disagreement = core::vantage_disagreement(result.observations);
    std::size_t flipped = 0;
    for (const auto& line : disagreement.metrics)
      if (line.sign_flip_fraction > 0.0) ++flipped;

    table.add_row({"vantages " + std::to_string(vantages),
                   util::TextTable::num(elapsed_s, 3),
                   util::TextTable::num(elapsed_s / vantages, 3),
                   home_identical ? "identical" : "DIFFER (BUG)",
                   std::to_string(flipped) + "/" +
                       std::to_string(disagreement.metrics.size())});
    world.metrics.gauge("bench.vantage.v" + std::to_string(vantages) + "_s") =
        elapsed_s;
    world.metrics.gauge("bench.vantage.v" + std::to_string(vantages) +
                        "_flipped") = static_cast<double>(flipped);
    if (!home_identical)
      ++world.metrics.counter("bench.vantage.digest_mismatches");
  }

  std::cout << table;
  std::cout << "\n(s/vantage should stay flat: the engine is a sequential "
               "loop over independent campaigns. A sign-flip metric is one "
               "where landing-vs-internal deltas reverse direction at some "
               "vantage — invisible to any single-vantage study)\n";
  world.write_bench_json("vantage");
  return 0;
}
