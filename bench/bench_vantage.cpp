// Cost and payoff of multi-vantage campaigns (§3.1, §5.3).
//
// Runs the same campaign as the historical single-vantage engine, then
// as a VantageCampaign at 1, 3 and 5 vantage points, and reports
// wall-clock time, the per-vantage slowdown (at jobs=1 the engine
// drains (vantage, shard) cells serially, so N vantages should cost
// about N campaigns), and whether the 1-vantage run and every
// vantage-0 slice stay byte-identical to the plain campaign (the
// engine's contract). The payoff column is what a single vantage
// cannot see: the fraction of landing-vs-internal metric deltas whose
// *sign* flips somewhere across vantages — the paper's Fig. 10c
// World-category reversal, reproduced on purpose.
//
// The second section measures the 2-D scheduler: the same 4-vantage
// campaign with the cross-vantage (vantage x shard) work pool at
// increasing --jobs, asserting the artifact bytes never move while the
// wall-clock drops.
//
// HISPAR_SITES scales the list (default 120); HISPAR_JOBS the worker
// threads of the scheduling pool for the first section.
#include <chrono>
#include <cstdio>

#include "common.h"
#include "core/serialization.h"
#include "core/vantage.h"
#include "net/vantage_profile.h"
#include "util/rng.h"

namespace {

using namespace hispar;

std::uint64_t csv_digest(const std::vector<core::SiteObservation>& sites) {
  std::ostringstream csv;
  core::write_measure_csv(csv, sites);
  return util::fnv1a(csv.str());
}

}  // namespace

int main() {
  bench::print_header(
      "multi-vantage campaign cost",
      "one US server shapes every absolute number (§3.1, §5.3); N "
      "vantages cost ~N campaigns and surface the sign flips a single "
      "vantage hides");

  const std::size_t sites = bench::env_sites(120);
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  core::CampaignConfig base;
  base.landing_loads = 10;
  base.jobs = bench::env_jobs();

  using Clock = std::chrono::steady_clock;
  const auto time_s = [](Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
  };

  // Reference: the plain single-vantage campaign.
  auto started = Clock::now();
  core::MeasurementCampaign plain(*world.web, base);
  const auto plain_sites = plain.run(world.h1k);
  const double plain_s = time_s(started);
  const std::uint64_t plain_digest = csv_digest(plain_sites);
  world.metrics.gauge("bench.vantage.single_s") = plain_s;

  util::TextTable table({"runner", "seconds", "s/vantage", "vantage-0 bytes",
                         "sign-flip metrics"});
  table.add_row({"plain campaign", util::TextTable::num(plain_s, 3),
                 util::TextTable::num(plain_s, 3), "reference", "-"});

  for (std::size_t vantages : {1u, 3u, 5u}) {
    core::VantageCampaignConfig config;
    config.base = base;
    config.profiles = net::VantageProfile::default_vantages(vantages);
    core::VantageCampaign campaign(*world.web, config);
    started = Clock::now();
    const core::VantageRunResult result = campaign.run(world.h1k);
    const double elapsed_s = time_s(started);

    const bool home_identical =
        csv_digest(result.observations[0]) == plain_digest;
    const auto disagreement = core::vantage_disagreement(result.observations);
    std::size_t flipped = 0;
    for (const auto& line : disagreement.metrics)
      if (line.sign_flip_fraction > 0.0) ++flipped;

    table.add_row({"vantages " + std::to_string(vantages),
                   util::TextTable::num(elapsed_s, 3),
                   util::TextTable::num(elapsed_s / vantages, 3),
                   home_identical ? "identical" : "DIFFER (BUG)",
                   std::to_string(flipped) + "/" +
                       std::to_string(disagreement.metrics.size())});
    world.metrics.gauge("bench.vantage.v" + std::to_string(vantages) + "_s") =
        elapsed_s;
    world.metrics.gauge("bench.vantage.v" + std::to_string(vantages) +
                        "_flipped") = static_cast<double>(flipped);
    if (!home_identical)
      ++world.metrics.counter("bench.vantage.digest_mismatches");
  }

  std::cout << table;
  std::cout << "\n(s/vantage should stay flat at jobs=1: cells drain "
               "serially in (vantage, shard) order. A sign-flip metric is "
               "one where landing-vs-internal deltas reverse direction at "
               "some vantage — invisible to any single-vantage study)\n";

  // --- 2-D scheduler scaling: 4 vantages, jobs sweep ---
  std::cout << "\n";
  util::TextTable scaling(
      {"jobs", "seconds", "speedup", "efficiency", "bytes vs jobs=1"});
  double jobs1_s = 0.0;
  std::uint64_t jobs1_digest = 0;
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    core::VantageCampaignConfig config;
    config.base = base;
    config.base.jobs = jobs;
    config.profiles = net::VantageProfile::default_vantages(4);
    core::VantageCampaign campaign(*world.web, config);
    started = Clock::now();
    const core::VantageRunResult result = campaign.run(world.h1k);
    const double elapsed_s = time_s(started);

    std::ostringstream all_csv;
    for (const auto& observations : result.observations)
      core::write_measure_csv(all_csv, observations);
    const std::uint64_t digest = util::fnv1a(all_csv.str());
    if (jobs == 1) {
      jobs1_s = elapsed_s;
      jobs1_digest = digest;
    }
    const bool identical = digest == jobs1_digest;
    const double speedup = elapsed_s > 0.0 ? jobs1_s / elapsed_s : 0.0;
    scaling.add_row({std::to_string(jobs), util::TextTable::num(elapsed_s, 3),
                     util::TextTable::num(speedup, 2),
                     util::TextTable::num(speedup / jobs, 2),
                     identical ? "identical" : "DIFFER (BUG)"});
    world.metrics.gauge("bench.vantage.v4_jobs" + std::to_string(jobs) +
                        "_s") = elapsed_s;
    if (!identical)
      ++world.metrics.counter("bench.vantage.digest_mismatches");
  }
  world.metrics.gauge("bench.vantage.v4_speedup_j8") =
      world.metrics.gauge("bench.vantage.v4_jobs8_s") > 0.0
          ? jobs1_s / world.metrics.gauge("bench.vantage.v4_jobs8_s")
          : 0.0;

  std::cout << scaling;
  std::cout << "\n(the pool schedules vantages x shards = "
            << 4 * core::CampaignConfig().shards
            << " independent cells, so speedup saturates at min(hardware "
               "threads, cells); on a single-core host every row runs "
               "serially and speedup stays ~1.0)\n";
  world.write_bench_json("vantage");
  return 0;
}
