// §7 extension: comparing internal-page selection strategies.
//
// The paper picks search-engine results and *discusses* the alternatives
// (publisher-curated sets, browser telemetry, random pages, monkey
// testing). This bench runs all of them over the same sites and scores:
//  * representativeness — how closely the selection's medians track a
//    visit-weighted reference sample ("the browsing experience of real
//    users", §3);
//  * stability — week-over-week churn of the selected URL sets (§3);
//  * cost — search-API dollars (only the search strategy pays, §7).
#include "common.h"
#include "core/selection.h"

using namespace hispar;

int main() {
  const std::size_t sites = bench::env_sites(150);
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  bench::print_header(
      "§7 — internal-page selection strategies",
      "search results are the paper's choice; publisher/telemetry sets "
      "are proposed alternatives; random is §4's baseline");

  const std::vector<core::SelectionStrategy> strategies = {
      core::SelectionStrategy::kSearchEngine,
      core::SelectionStrategy::kBrowserTelemetry,
      core::SelectionStrategy::kPublisherCurated,
      core::SelectionStrategy::kUniformRandom,
      core::SelectionStrategy::kMonkeyTesting,
      core::SelectionStrategy::kFirstLinks,
  };

  util::TextTable table({"strategy", "mean repr. error", "median #pages",
                         "weekly URL churn", "API cost/site"});
  for (const auto strategy : strategies) {
    double error_sum = 0.0;
    int scored = 0;
    std::vector<double> counts;
    double churn_sum = 0.0;
    int churn_sites = 0;

    search::SearchEngine engine(*world.web);
    const std::uint64_t queries_before = engine.queries_issued();

    for (std::size_t position = 0; position < world.h1k.sets.size();
         position += 4) {
      const web::WebSite* site =
          world.web->find_site(world.h1k.sets[position].domain);
      core::SelectionConfig config;
      config.pages = 19;
      const auto selection =
          core::select_internal_pages(*site, strategy, config, &engine);
      if (selection.empty()) continue;
      counts.push_back(static_cast<double>(selection.size()));
      error_sum += core::selection_representativeness(*site, selection, 120)
                       .mean_error();
      ++scored;

      // Week-over-week churn of the selection.
      core::SelectionConfig next_week = config;
      next_week.week = 1;
      next_week.seed ^= 0x9e3779b9;  // a fresh measurement session
      const auto second =
          core::select_internal_pages(*site, strategy, next_week, &engine);
      if (!second.empty()) {
        std::set<std::size_t> now(second.begin(), second.end());
        std::size_t gone = 0;
        for (std::size_t index : selection) gone += now.count(index) == 0;
        churn_sum +=
            static_cast<double>(gone) / static_cast<double>(selection.size());
        ++churn_sites;
      }
    }
    if (scored == 0) continue;
    const double queries =
        static_cast<double>(engine.queries_issued() - queries_before);
    table.add_row(
        {std::string(core::to_string(strategy)),
         util::TextTable::num(error_sum / scored, 3),
         util::TextTable::num(util::median(counts), 0),
         util::TextTable::pct(churn_sites ? churn_sum / churn_sites : 0.0),
         "$" + util::TextTable::num(
                   queries / (2.0 * scored) *
                       search::query_price_usd(search::SearchProvider::kGoogle),
                   4)});
  }
  std::cout << table;
  std::cout << "\nTakeaways: visit-weighted selections (search, telemetry) "
               "track real user experience;\nfirst-links and monkey walks "
               "are biased toward what the landing page promotes (§7).\n";
  return 0;
}
