// §5.3's implication, quantified: the DNS-over-HTTPS switching cost per
// page type (Boettger et al. measured ~20 DNS requests per *landing*
// page; internal pages contact fewer origins, so a landing-only study
// "would overestimate the count of DNS requests per page, and
// consequently miscalculate the cost of switching over to DoH").
#include "common.h"
#include "net/doh.h"

using namespace hispar;

int main() {
  const std::size_t sites = bench::env_sites(250);
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  bench::print_header(
      "§5.3 — the per-page cost of switching to DoH",
      "landing pages issue more DNS queries (median ~20, Fig. 5), so "
      "landing-only studies overstate DoH's per-page cost");

  net::LatencyModel latency;
  cdn::CdnHierarchy cdn(world.web->cdn_registry(), latency);
  net::CachingResolver resolver(
      {"local", 1, 6.0, net::Region::kNorthAmerica, 1.0}, latency);
  browser::PageLoader loader({&latency, &world.web->cdn_registry(), &cdn,
                              &resolver, net::Region::kNorthAmerica});
  const net::DohConfig doh_config;  // 30 ms setup + 4 ms/query

  std::vector<double> landing_queries, internal_queries;
  std::vector<double> landing_cost_ms, internal_cost_ms;
  for (std::size_t position = 0; position < world.h1k.sets.size();
       position += 2) {
    const auto& set = world.h1k.sets[position];
    if (set.page_indices.size() < 2) continue;
    const web::WebSite* site = world.web->find_site(set.domain);
    const auto measure = [&](std::size_t page_index, std::vector<double>& q,
                             std::vector<double>& cost) {
      browser::LoadOptions options;
      options.use_resource_hints = false;  // count every lookup
      const auto result =
          loader.load(site->page(page_index), util::Rng(11), options);
      q.push_back(result.dns_lookups);
      // Per-page DoH cost: connection setup amortized per page (cold
      // browser session, as in the paper's methodology) + per query.
      cost.push_back(doh_config.connection_setup_ms +
                     result.dns_lookups * doh_config.per_query_overhead_ms);
    };
    measure(0, landing_queries, landing_cost_ms);
    measure(set.page_indices[1], internal_queries, internal_cost_ms);
  }

  util::TextTable table({"page type", "median DNS queries",
                         "median DoH overhead (ms)", "p90 overhead (ms)"});
  table.add_row({"landing",
                 util::TextTable::num(util::median(landing_queries), 0),
                 util::TextTable::num(util::median(landing_cost_ms), 1),
                 util::TextTable::num(util::quantile(landing_cost_ms, 0.9), 1)});
  table.add_row({"internal",
                 util::TextTable::num(util::median(internal_queries), 0),
                 util::TextTable::num(util::median(internal_cost_ms), 1),
                 util::TextTable::num(util::quantile(internal_cost_ms, 0.9),
                                      1)});
  std::cout << table;
  std::cout << "\nlanding-only DoH cost estimate is "
            << util::TextTable::num(
                   util::median(landing_cost_ms) /
                       util::median(internal_cost_ms),
                   2)
            << "x the internal-page cost (paper: landing pages issue more "
               "queries; Boettger et al.'s\nmedian of 20/landing page "
               "matches our landing median)\n";
  return 0;
}
