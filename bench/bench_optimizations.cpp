// §5.4 / §5.5 implications, quantified:
//  * dependency-flattening optimizations (Polaris / Server Push /
//    Shandian) were designed and evaluated on landing pages, whose
//    dependency graphs are deeper — measure the onLoad gain per page
//    type and the landing-only evaluation bias;
//  * resource hints: "future work can use our publicly available lists
//    to carefully evaluate which hints could help internal pages, and to
//    what extent" — inject dns-prefetch/preconnect into internal pages
//    and measure the PLT gain.
#include "common.h"
#include "browser/critical_path.h"
#include "browser/qoe.h"

using namespace hispar;

namespace {

struct Env {
  net::LatencyModel latency;
  cdn::CdnHierarchy cdn;
  net::CachingResolver resolver;
  browser::PageLoader loader;

  explicit Env(const web::SyntheticWeb& web)
      : latency(),
        cdn(web.cdn_registry(), latency),
        resolver({"local", 1, 6.0, net::Region::kNorthAmerica, 1.0}, latency),
        loader({&latency, &web.cdn_registry(), &cdn, &resolver,
                net::Region::kNorthAmerica}) {}
};

}  // namespace

int main() {
  const std::size_t sites = bench::env_sites(200);
  bench::BenchWorld world(/*run_campaign=*/false, sites);
  Env env(*world.web);

  bench::print_header(
      "§5.4 — dependency-flattening (push) gains per page type",
      "landing pages have deeper graphs, so landing-only evaluations "
      "overestimate the optimization's impact on real browsing");

  double landing_plt_base = 0.0, landing_plt_pushed = 0.0;
  double internal_plt_base = 0.0, internal_plt_pushed = 0.0;
  double landing_ol_base = 0.0, landing_ol_pushed = 0.0;
  double internal_ol_base = 0.0, internal_ol_pushed = 0.0;
  double landing_hops = 0.0, internal_hops = 0.0;
  int measured = 0;
  for (std::size_t position = 0; position < world.h1k.sets.size();
       ++position) {
    const auto& set = world.h1k.sets[position];
    const web::WebSite* site = world.web->find_site(set.domain);
    if (set.page_indices.size() < 2) continue;
    const auto landing = site->page(0);
    const auto internal = site->page(set.page_indices[1]);

    const auto lb = env.loader.load(landing, util::Rng(position));
    const auto lp = env.loader.load(browser::push_all_objects(landing),
                                    util::Rng(position));
    const auto ib = env.loader.load(internal, util::Rng(position ^ 0xa5));
    const auto ip = env.loader.load(browser::push_all_objects(internal),
                                    util::Rng(position ^ 0xa5));
    landing_plt_base += lb.plt_ms;
    landing_plt_pushed += lp.plt_ms;
    internal_plt_base += ib.plt_ms;
    internal_plt_pushed += ip.plt_ms;
    landing_ol_base += lb.on_load_ms;
    landing_ol_pushed += lp.on_load_ms;
    internal_ol_base += ib.on_load_ms;
    internal_ol_pushed += ip.on_load_ms;
    landing_hops += browser::critical_path(landing, lb).hops;
    internal_hops += browser::critical_path(internal, ib).hops;
    ++measured;
  }
  const double landing_gain = 1.0 - landing_plt_pushed / landing_plt_base;
  const double internal_gain = 1.0 - internal_plt_pushed / internal_plt_base;
  util::TextTable push({"page type", "PLT gain from push",
                        "onLoad gain from push", "mean critical-path hops"});
  push.add_row(
      {"landing", util::TextTable::pct(landing_gain),
       util::TextTable::pct(1.0 - landing_ol_pushed / landing_ol_base),
       util::TextTable::num(landing_hops / measured, 2)});
  push.add_row(
      {"internal", util::TextTable::pct(internal_gain),
       util::TextTable::pct(1.0 - internal_ol_pushed / internal_ol_base),
       util::TextTable::num(internal_hops / measured, 2)});
  std::cout << push;
  std::cout << "landing-only evaluation overstates the PLT push gain by "
            << util::TextTable::num(landing_gain / internal_gain, 2)
            << "x\n\n";

  bench::print_header(
      "§5.5 — which hints would help internal pages?",
      "internal pages of >90% of sites use multiple origins, so at least "
      "dns-prefetch should be added to them");

  util::TextTable hints({"injected hints", "internal PLT gain",
                         "internal DNS-time gain"});
  for (const auto& [label, dns, preconnect] :
       {std::tuple{"dns-prefetch x8", 8, 0},
        std::tuple{"preconnect x4", 0, 4},
        std::tuple{"dns-prefetch x8 + preconnect x4", 8, 4}}) {
    double base_plt = 0.0, hinted_plt = 0.0;
    double base_dns = 0.0, hinted_dns = 0.0;
    for (std::size_t position = 0; position < world.h1k.sets.size();
         ++position) {
      const auto& set = world.h1k.sets[position];
      if (set.page_indices.size() < 2) continue;
      const web::WebSite* site = world.web->find_site(set.domain);
      const auto page = site->page(set.page_indices[1]);
      const auto baseline = env.loader.load(page, util::Rng(position * 7));
      const auto hinted =
          env.loader.load(browser::with_added_hints(page, dns, preconnect),
                          util::Rng(position * 7));
      base_plt += baseline.plt_ms;
      hinted_plt += hinted.plt_ms;
      base_dns += baseline.dns_time_ms;
      hinted_dns += hinted.dns_time_ms;
    }
    hints.add_row({label, util::TextTable::pct(1.0 - hinted_plt / base_plt),
                   util::TextTable::pct(1.0 - hinted_dns / base_dns)});
  }
  std::cout << hints;
  return 0;
}
