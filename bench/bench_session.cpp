// Cost and payoff of warm browsing-session replay (§5.1 cacheability).
//
// Runs the session engine's two arms over the same list — the cold
// control (every page a fresh profile, the paper's §3.1 protocol) and
// the warm replay (landing + internals through one per-session browser
// cache, warm DNS and keep-alive) — and reports wall-clock cost per
// arm, the warm-hit ratio, and the payoff: how much of the internal
// pages' PLT the within-session cache buys back. A plain campaign is
// timed alongside as the overhead reference: with sessions off the
// loader takes the exact same code path as before the feature, so the
// cold arm's per-page cost must stay at ~1.00x the plain campaign's.
//
// HISPAR_SITES scales the list (default 120); HISPAR_JOBS the worker
// threads of each campaign.
#include <chrono>

#include "common.h"
#include "core/session.h"

namespace {

using namespace hispar;

double pages_loaded(const std::vector<core::SiteObservation>& sites) {
  double pages = 0.0;
  for (const auto& site : sites)
    for (const auto& outcome : site.outcomes)
      pages += outcome.status != browser::LoadStatus::kFailed;
  return pages;
}

}  // namespace

int main() {
  bench::print_header(
      "browsing-session replay cost",
      "landing pages carry more non-cacheable objects than internal "
      "pages (§5.1, Fig. 4a), so a warm within-session cache pays off "
      "mostly on internal pages and narrows the landing-internal gap");

  const std::size_t sites = bench::env_sites(120);
  bench::BenchWorld world(/*run_campaign=*/false, sites);

  using Clock = std::chrono::steady_clock;
  const auto time_s = [](Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
  };

  // Overhead reference: the plain campaign's per-page cost. Sessions
  // off is a null-pointer branch in the loader, so the session engine's
  // cold arm must not be measurably slower per page.
  core::CampaignConfig base;
  base.landing_loads = 3;
  base.jobs = bench::env_jobs();
  auto started = Clock::now();
  core::MeasurementCampaign plain(*world.web, base);
  const auto plain_sites = plain.run(world.h1k);
  const double plain_s = time_s(started);
  const double plain_pages = pages_loaded(plain_sites);

  core::SessionConfig session_base;
  session_base.base = base;
  session_base.session_len = 5;

  auto cold_config = session_base;
  cold_config.warm = false;
  core::SessionCampaign cold_campaign(*world.web, cold_config);
  started = Clock::now();
  const auto cold = cold_campaign.run(world.h1k);
  const double cold_s = time_s(started);
  const double cold_pages = pages_loaded(cold);

  core::SessionCampaign warm_campaign(*world.web, session_base);
  started = Clock::now();
  const auto warm = warm_campaign.run(world.h1k);
  const double warm_s = time_s(started);

  browser::CacheStats total;
  for (const auto& stats : warm_campaign.cache_stats()) {
    total.lookups += stats.lookups;
    total.fresh_hits += stats.fresh_hits;
    total.revalidations += stats.revalidations;
    total.misses += stats.misses;
  }
  const double hit_ratio =
      total.lookups == 0
          ? 0.0
          : static_cast<double>(total.fresh_hits) /
                static_cast<double>(total.lookups);

  const auto delta = core::cold_warm_delta(cold, warm);
  double internal_speedup = 0.0;
  for (const auto& line : delta.metrics)
    if (line.metric == "plt_ms" && line.has_values &&
        line.warm_internal_median > 0.0)
      internal_speedup = line.cold_internal_median / line.warm_internal_median;

  const double off_overhead_x =
      plain_s <= 0.0 || cold_pages <= 0.0 || plain_pages <= 0.0
          ? 0.0
          : (cold_s / cold_pages) / (plain_s / plain_pages);

  util::TextTable table(
      {"arm", "seconds", "pages", "warm-hit ratio", "internal PLT x"});
  table.add_row({"plain campaign", util::TextTable::num(plain_s, 3),
                 util::TextTable::num(plain_pages, 0), "-", "-"});
  table.add_row({"cold replay", util::TextTable::num(cold_s, 3),
                 util::TextTable::num(cold_pages, 0), "0.0%", "1.00"});
  table.add_row({"warm replay", util::TextTable::num(warm_s, 3),
                 util::TextTable::num(pages_loaded(warm), 0),
                 util::TextTable::pct(hit_ratio),
                 util::TextTable::num(internal_speedup)});
  std::cout << table;
  std::cout << "\n(internal PLT x = cold/warm median internal-page PLT: what "
               "one warm within-session cache buys back. sessions-off "
               "overhead "
            << util::TextTable::num(off_overhead_x)
            << "x should stay at ~1.00x: with no SessionState the loader "
               "takes the pre-session code path)\n";

  world.metrics.gauge("bench.session.plain_s") = plain_s;
  world.metrics.gauge("bench.session.cold_s") = cold_s;
  world.metrics.gauge("bench.session.warm_s") = warm_s;
  world.metrics.gauge("bench.session.warm_hit_ratio") = hit_ratio;
  world.metrics.gauge("bench.session.internal_plt_speedup") = internal_speedup;
  world.metrics.gauge("bench.session.off_overhead_x") = off_overhead_x;
  world.write_bench_json("session");
  return 0;
}
