// Figure 5 + §5.3: multi-origin content and DNS resolver caching.
//  Fig. 5: 67% of H1K sites contact more origins on the landing page
//  (median +29%).
//  §5.3: back-to-back queries for the most popular 5K domains see only
//  ~30% first-query cache hits at a local (ISP) resolver and ~20% at a
//  fragmented public resolver.
#include "common.h"
#include "net/dns.h"
#include "toplist/providers.h"

using namespace hispar;

namespace {

// §5.3 probe: two consecutive queries per domain; the first classifies
// the resolver cache as hit/miss (the second always hits and validates
// the probe).
struct DnsProbeResult {
  double first_query_hit_rate = 0.0;
  double second_query_hit_rate = 0.0;
};

DnsProbeResult probe_resolver(net::CachingResolver& resolver,
                              const std::vector<net::DnsRecord>& records,
                              util::Rng& rng) {
  std::size_t first_hits = 0, second_hits = 0;
  double now_s = 0.0;
  for (const auto& record : records) {
    const auto first = resolver.resolve(record, now_s, rng);
    const auto second = resolver.resolve(record, now_s + 0.2, rng);
    if (first.cache_hit) ++first_hits;
    if (second.cache_hit) ++second_hits;
    now_s += 1.0;
  }
  return {static_cast<double>(first_hits) / records.size(),
          static_cast<double>(second_hits) / records.size()};
}

}  // namespace

int main() {
  bench::BenchWorld world;

  bench::print_header(
      "Figure 5 — multi-origin content (unique domains per page)",
      "67% of sites: landing contacts more origins; median +29% "
      "(Boettger et al. observe ~20 DNS requests per landing page)");
  const auto domains =
      core::compare_metric(world.sites, core::metric::unique_domains);
  const auto ks = core::ks_landing_vs_internal(world.sites,
                                               core::metric::unique_domains);
  std::cout << "landing contacts more origins for "
            << util::TextTable::pct(domains.fraction_landing_greater())
            << " of sites; geo-mean ratio "
            << util::TextTable::num(domains.geomean_ratio(), 2)
            << "; medians L=" << util::median(domains.landing)
            << " I=" << util::median(domains.internal_median)
            << "; KS D=" << util::TextTable::num(ks.statistic, 3) << "\n";
  std::cout << "delta CDF (#domains): " << bench::cdf_summary(domains.deltas())
            << "\n\n";

  // --- §5.3 DNS cache-hit probe ---
  bench::print_header(
      "§5.3 — resolver cache hit rates for the top-5K domains",
      "~30% at the local (ISP) resolver, ~20% at the fragmented public "
      "resolver (low TTLs for CDN request routing)");

  // Top domains by Umbrella-style DNS volume; per-domain resolver query
  // rates follow the site traffic model.
  const std::size_t probe_count = std::min<std::size_t>(
      5000, world.web->site_count());
  const toplist::TopList umbrella = toplist::TopListFactory(*world.web)
                                        .weekly_list(
                                            toplist::Provider::kUmbrella, 0,
                                            probe_count);
  std::vector<net::DnsRecord> records;
  util::Rng rng(4242);
  for (const auto& domain : umbrella.domains()) {
    const web::WebSite* site = world.web->find_site(domain);
    net::DnsRecord record;
    record.domain = domain;
    // CDN-routed names dominate popular sites; their effective TTL is
    // tiny (Moura et al.), which is what caps the hit rates.
    record.cdn_request_routing =
        site->profile().internal_cdn_fraction > 0.35;
    record.ttl_s = record.cdn_request_routing
                       ? 30.0
                       : 300.0 + static_cast<double>(util::fnv1a(domain) % 3300u);
    record.client_query_rate = site->profile().site_visit_rate * 0.35;
    records.push_back(record);
  }

  net::LatencyModel latency;
  net::CachingResolver local({"local-isp", 1, 6.0,
                              net::Region::kNorthAmerica, 1.0},
                             latency);
  net::CachingResolver google({"google-public", 4, 12.0,
                               net::Region::kNorthAmerica, 1.0},
                              latency);
  const auto local_result = probe_resolver(local, records, rng);
  const auto google_result = probe_resolver(google, records, rng);

  util::TextTable table(
      {"resolver", "1st-query hit rate", "2nd-query hit rate", "paper"});
  table.add_row({"local ISP (1 cache)",
                 util::TextTable::pct(local_result.first_query_hit_rate),
                 util::TextTable::pct(local_result.second_query_hit_rate),
                 "~30%"});
  table.add_row({"Google public (fragmented)",
                 util::TextTable::pct(google_result.first_query_hit_rate),
                 util::TextTable::pct(google_result.second_query_hit_rate),
                 "~20%"});
  std::cout << table;
  std::cout << "\nDNS lookups per cold page load (median): landing "
            << util::median(core::landing_values(
                   world.sites,
                   [](const core::PageMetrics& m) { return m.dns_lookups; }))
            << ", internal "
            << util::median(core::internal_values(
                   world.sites,
                   [](const core::PageMetrics& m) { return m.dns_lookups; }))
            << "\n";
  return 0;
}
