// Figure 2: overview of landing (L) vs internal (I) differences on H1K
// and Ht30.
//  2a: size deltas    — 65% (H1K) / 54% (Ht30) of sites have larger
//      landing pages; geometric-mean size ratio 1.34.
//  2b: object deltas  — 68% / 57%; geometric-mean ratio 1.24; for ~5% of
//      sites the landing page has fewer objects yet is larger.
//  2c: PLT deltas     — landing loads faster for 56% (H1K) / 77% (Ht30).
#include "common.h"

using namespace hispar;

namespace {

void figure_row(util::TextTable& table, const char* label,
                const std::vector<core::SiteObservation>& sites,
                const core::MetricFn& fn, double unit, bool lower_is_faster) {
  const auto comparison = core::compare_metric(sites, fn);
  const auto deltas = comparison.deltas();
  std::vector<double> scaled;
  scaled.reserve(deltas.size());
  for (double d : deltas) scaled.push_back(d / unit);
  const auto ks = core::ks_landing_vs_internal(sites, fn);
  table.add_row(
      {label,
       util::TextTable::pct(lower_is_faster
                                ? 1.0 - comparison.fraction_landing_greater()
                                : comparison.fraction_landing_greater()),
       util::TextTable::num(comparison.geomean_ratio(), 3),
       util::TextTable::num(util::median(scaled), 3),
       util::TextTable::num(util::quantile(scaled, 0.05), 2),
       util::TextTable::num(util::quantile(scaled, 0.95), 2),
       util::TextTable::num(ks.statistic, 3)});
}

}  // namespace

int main() {
  bench::BenchWorld world;
  const auto ht30 = world.top(30);

  bench::print_header(
      "Figure 2 — size, object-count and PLT deltas (L - median I)",
      "2a: L larger for 65% (H1K) / 54% (Ht30), geo-mean ratio 1.34; "
      "2b: L more objects for 68% / 57%, ratio 1.24; "
      "2c: L faster for 56% / 77%");

  util::TextTable table({"metric [list]", "headline %", "geo-mean L/I",
                         "median delta", "p5", "p95", "KS D"});
  figure_row(table, "2a size MB [H1K]", world.sites, core::metric::bytes,
             1e6, false);
  figure_row(table, "2a size MB [Ht30]", ht30, core::metric::bytes, 1e6,
             false);
  figure_row(table, "2b #objects [H1K]", world.sites, core::metric::objects,
             1.0, false);
  figure_row(table, "2b #objects [Ht30]", ht30, core::metric::objects, 1.0,
             false);
  figure_row(table, "2c PLT s [H1K] (% L faster)", world.sites,
             core::metric::plt_ms, 1000.0, true);
  figure_row(table, "2c PLT s [Ht30] (% L faster)", ht30,
             core::metric::plt_ms, 1000.0, true);
  std::cout << table << "\n";

  // Fig. 2b inset: sites whose landing has fewer objects but more bytes.
  const auto size_cmp = core::compare_metric(world.sites, core::metric::bytes);
  const auto object_cmp =
      core::compare_metric(world.sites, core::metric::objects);
  std::size_t fewer_but_larger = 0;
  for (std::size_t i = 0; i < size_cmp.landing.size(); ++i) {
    if (object_cmp.landing[i] < object_cmp.internal_median[i] &&
        size_cmp.landing[i] > size_cmp.internal_median[i])
      ++fewer_but_larger;
  }
  std::cout << "sites with fewer landing objects yet larger landing pages: "
            << util::TextTable::pct(static_cast<double>(fewer_but_larger) /
                                    static_cast<double>(size_cmp.landing.size()))
            << "  (paper: 5%)\n\n";

  std::cout << "CDF of L.size - I.size (MB):   "
            << bench::cdf_summary([&] {
                 std::vector<double> mb;
                 for (double d : size_cmp.deltas()) mb.push_back(d / 1e6);
                 return mb;
               }())
            << "\n";
  std::cout << "CDF of L.PLT - I.PLT (s):      "
            << bench::cdf_summary([&] {
                 const auto cmp =
                     core::compare_metric(world.sites, core::metric::plt_ms);
                 std::vector<double> seconds;
                 for (double d : cmp.deltas()) seconds.push_back(d / 1000.0);
                 return seconds;
               }())
            << "\n";
  return 0;
}
