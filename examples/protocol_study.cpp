// The §5.6 cautionary tale, run both ways: evaluate round-trip-saving
// transport protocols (TLS 1.3, TCP Fast Open, QUIC, QUIC 0-RTT) on
// landing pages only — as prior work did — and then again on internal
// pages. Landing pages perform ~25% more handshakes, so a landing-only
// evaluation exaggerates the benefit ("Ignoring internal pages in the
// evaluation of such optimizations could exaggerate their benefits").
//
//   $ ./examples/protocol_study [sites]
#include <cstdlib>
#include <iostream>

#include "core/analyses.h"
#include "core/hispar.h"
#include "core/measurement.h"
#include "util/table.h"

namespace {

using namespace hispar;

struct ProtocolResult {
  double landing_plt_ms = 0.0;
  double internal_plt_ms = 0.0;
};

ProtocolResult measure(const web::SyntheticWeb& web,
                       const core::HisparList& list,
                       std::optional<net::TransportProtocol> transport) {
  core::CampaignConfig config;
  config.landing_loads = 4;
  config.load_options.transport_override = transport;
  core::MeasurementCampaign campaign(web, config);
  const auto sites = campaign.run(list);
  ProtocolResult result;
  result.landing_plt_ms =
      util::median(core::landing_values(sites, core::metric::plt_ms));
  result.internal_plt_ms =
      util::median(core::internal_values(sites, core::metric::plt_ms));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t sites =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;

  web::SyntheticWebConfig web_config;
  web_config.site_count = std::max<std::size_t>(600, sites * 3);
  web::SyntheticWeb web(web_config);
  toplist::TopListFactory toplists(web);
  search::SearchEngine engine(web);
  core::HisparBuilder builder(web, toplists, engine);
  core::HisparConfig config;
  config.target_sites = sites;
  config.urls_per_site = 12;
  const auto list = builder.build(config, 0);

  const auto baseline = measure(web, list, std::nullopt);
  std::cout << "baseline (site-chosen TLS 1.2/1.3 mix): landing PLT "
            << util::TextTable::num(baseline.landing_plt_ms / 1000, 2)
            << " s, internal "
            << util::TextTable::num(baseline.internal_plt_ms / 1000, 2)
            << " s\n\n";

  util::TextTable table({"protocol", "landing PLT gain",
                         "internal PLT gain", "landing-only bias"});
  for (auto protocol :
       {net::TransportProtocol::kTcpTls13, net::TransportProtocol::kTfoTls13,
        net::TransportProtocol::kQuic, net::TransportProtocol::kQuic0Rtt}) {
    const auto result = measure(web, list, protocol);
    const double landing_gain =
        1.0 - result.landing_plt_ms / baseline.landing_plt_ms;
    const double internal_gain =
        1.0 - result.internal_plt_ms / baseline.internal_plt_ms;
    table.add_row(
        {std::string(net::to_string(protocol)),
         util::TextTable::pct(landing_gain),
         util::TextTable::pct(internal_gain),
         util::TextTable::num(
             internal_gain != 0.0 ? landing_gain / internal_gain : 0.0, 2) +
             "x"});
  }
  std::cout << table;
  std::cout << "\nA study that evaluates these protocols on landing pages "
               "only overstates what\nusers browsing articles (internal "
               "pages) will actually gain — §5.6's warning.\n";
  return 0;
}
