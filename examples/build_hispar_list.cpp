// Build a weekly Hispar list (the paper's published artifact) and write
// it to a CSV: one row per URL with its site, bootstrap rank and page
// kind. Also prints the §7 cost accounting and week-over-week churn.
//
//   $ ./examples/build_hispar_list [sites] [urls_per_site] [out.csv]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/hispar.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hispar;

  const std::size_t sites =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  const std::size_t urls_per_site =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 50;
  const std::string out_path = argc > 3 ? argv[3] : "hispar_list.csv";

  web::SyntheticWebConfig web_config;
  web_config.site_count = std::max<std::size_t>(3000, sites * 3);
  web::SyntheticWeb web(web_config);
  toplist::TopListFactory toplists(web);
  search::SearchEngine engine(web);

  core::HisparBuilder builder(web, toplists, engine);
  core::HisparConfig config;
  config.name = "H" + std::to_string(sites);
  config.target_sites = sites;
  config.urls_per_site = urls_per_site;
  config.min_internal_results = 10;  // the H2K rule (§3)

  // The paper refreshes every Thursday 11:00 UTC; weeks are epochs here.
  const auto week0 = builder.build(config, 0);
  const auto stats0 = builder.last_build_stats();
  const auto week1 = builder.build(config, 1);

  std::ofstream out(out_path);
  out << "domain,bootstrap_rank,kind,url\n";
  for (const auto& set : week0.sets) {
    for (std::size_t i = 0; i < set.urls.size(); ++i) {
      out << set.domain << ',' << set.bootstrap_rank << ','
          << (i == 0 ? "landing" : "internal") << ',' << set.urls[i] << '\n';
    }
  }
  out.close();

  std::cout << "wrote " << week0.total_urls() << " URLs for "
            << week0.sets.size() << " sites to " << out_path << "\n\n";

  util::TextTable table({"statistic", "value"});
  table.add_row({"sites examined", std::to_string(stats0.sites_examined)});
  table.add_row({"sites dropped (sparse/non-English)",
                 std::to_string(stats0.sites_dropped)});
  table.add_row({"search queries billed",
                 std::to_string(stats0.queries_issued)});
  table.add_row({"cost at Google pricing ($5/1k)",
                 "$" + util::TextTable::num(stats0.spend_usd, 2)});
  table.add_row({"cost at Bing pricing ($3/1k)",
                 "$" + util::TextTable::num(
                           static_cast<double>(stats0.queries_issued) * 0.003,
                           2)});
  table.add_row({"week-over-week site churn",
                 util::TextTable::pct(core::site_churn(week0, week1))});
  table.add_row({"week-over-week internal-URL churn",
                 util::TextTable::pct(core::internal_url_churn(week0, week1))});
  std::cout << table;
  return 0;
}
