// Publisher-style site audit (§7 "Involve publishers"): measure one
// site's landing page against its most-visited internal pages and
// report where the two diverge — exactly the self-check the paper asks
// content providers to run before trusting landing-page-only studies.
//
//   $ ./examples/site_audit [domain|rank] [internal_pages]
//
// Also dumps the landing page's HAR (har.json) for external tooling.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "browser/har.h"
#include "browser/loader.h"
#include "core/analyses.h"
#include "core/measurement.h"
#include "search/engine.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hispar;

  web::SyntheticWeb web({3000, 42, 2000, true});

  const web::WebSite* site = nullptr;
  if (argc > 1) {
    site = web.find_site(argv[1]);
    if (site == nullptr) {
      const auto rank = static_cast<std::size_t>(std::atol(argv[1]));
      if (rank >= 1 && rank <= web.site_count())
        site = &web.site_by_rank(rank);
    }
    if (site == nullptr) {
      std::cerr << "unknown domain/rank: " << argv[1] << "\n";
      return 1;
    }
  } else {
    site = &web.crawl_site(web::CrawlSite::kNyTimes);
  }
  const std::size_t internal_count =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 19;

  std::cout << "auditing " << site->domain() << " (rank "
            << site->profile().rank << ", category "
            << web::to_string(site->profile().category) << ", "
            << site->internal_page_count() << " internal pages)\n\n";

  // Most-visited internal pages via the search engine (the Hispar way).
  search::SearchEngine engine(web);
  const auto results =
      engine.site_query(site->domain(), internal_count, /*week=*/0);
  std::vector<std::size_t> pages;
  for (const auto& result : results)
    if (result.page_index != 0) pages.push_back(result.page_index);

  core::CampaignConfig config;
  config.landing_loads = 10;
  core::MeasurementCampaign campaign(web, config);
  const auto observation = campaign.measure_site(*site, pages);

  util::TextTable table(
      {"metric", "landing (median of 10)", "internal (median)", "L/I"});
  const auto row = [&](const char* name, const core::MetricFn& fn,
                       double unit, int precision) {
    const double landing = fn(observation.landing) / unit;
    const double internal = observation.internal_median(fn) / unit;
    table.add_row({name, util::TextTable::num(landing, precision),
                   util::TextTable::num(internal, precision),
                   util::TextTable::num(
                       internal > 0 ? landing / internal : 0.0, 2)});
  };
  row("page size (MB)", core::metric::bytes, 1e6, 2);
  row("objects", core::metric::objects, 1, 0);
  row("PLT (s)", core::metric::plt_ms, 1000, 2);
  row("SpeedIndex (s)", core::metric::speed_index_ms, 1000, 2);
  row("unique origins", core::metric::unique_domains, 1, 0);
  row("non-cacheable objects", core::metric::noncacheable, 1, 0);
  row("CDN byte fraction",
      [](const core::PageMetrics& m) { return m.cdn_bytes_fraction; }, 0.01,
      1);
  row("handshakes", core::metric::handshakes, 1, 0);
  row("tracking requests", core::metric::tracking_requests, 1, 0);
  row("resource hints", core::metric::hints_total, 1, 0);
  std::cout << table;

  const std::set<std::string> unseen = [&] {
    std::set<std::string> all = observation.internal_third_parties();
    std::set<std::string> out;
    for (const auto& domain : all)
      if (!observation.landing.third_parties.count(domain)) out.insert(domain);
    return out;
  }();
  std::cout << "\nthird parties on internal pages never seen on the landing "
               "page: "
            << unseen.size() << "\n";

  // Dump a HAR of one landing-page load for external analysis.
  net::LatencyModel latency;
  cdn::CdnHierarchy cdn(web.cdn_registry(), latency);
  net::CachingResolver resolver({}, latency);
  browser::PageLoader loader({&latency, &web.cdn_registry(), &cdn, &resolver,
                              net::Region::kNorthAmerica});
  const auto load = loader.load(site->page(0), util::Rng(1));
  std::ofstream("har.json") << browser::to_har_json(load.har);
  std::cout << "landing-page HAR written to har.json ("
            << load.har.entries.size() << " entries)\n";
  return 0;
}
