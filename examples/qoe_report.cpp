// QoE beyond PLT (§4's "well-known shortcomings in PLT"): compare
// landing and internal pages on SpeedIndex, above-the-fold time (90%
// visual completeness) and a Vesper-style time-to-interactive, plus the
// critical path that produced them.
//
//   $ ./examples/qoe_report [sites]
#include <cstdlib>
#include <iostream>

#include "browser/critical_path.h"
#include "browser/qoe.h"
#include "util/stats.h"
#include "util/table.h"
#include "web/generator.h"

int main(int argc, char** argv) {
  using namespace hispar;

  const std::size_t sites =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;
  web::SyntheticWeb web({std::max<std::size_t>(600, sites * 2), 42, 2000,
                         true});

  net::LatencyModel latency;
  cdn::CdnHierarchy cdn(web.cdn_registry(), latency);
  net::CachingResolver resolver({}, latency);
  browser::PageLoader loader({&latency, &web.cdn_registry(), &cdn, &resolver,
                              net::Region::kNorthAmerica});

  struct Sample {
    std::vector<double> first_paint, atf90, tti, speed_index, hops;
  } landing, internal;

  for (std::size_t rank = 1; rank <= sites; ++rank) {
    const web::WebSite& site = web.site_by_rank(rank);
    const auto measure = [&](std::size_t page_index, Sample& sample) {
      const auto page = site.page(page_index);
      const auto result = loader.load(page, util::Rng(rank * 31 + page_index));
      const auto qoe = browser::qoe_metrics(page, result);
      sample.first_paint.push_back(qoe.first_paint_ms / 1000.0);
      sample.atf90.push_back(qoe.visual_complete_90_ms / 1000.0);
      sample.tti.push_back(qoe.time_to_interactive_ms / 1000.0);
      sample.speed_index.push_back(result.speed_index_ms / 1000.0);
      sample.hops.push_back(browser::critical_path(page, result).hops);
    };
    measure(0, landing);
    measure(1 + rank % 7, internal);
  }

  util::TextTable table({"metric (median, s)", "landing", "internal",
                         "internal / landing"});
  const auto row = [&](const char* name, std::vector<double>& l,
                       std::vector<double>& i) {
    table.add_row({name, util::TextTable::num(util::median(l), 2),
                   util::TextTable::num(util::median(i), 2),
                   util::TextTable::num(util::median(i) / util::median(l), 2)});
  };
  row("first paint (= paper's PLT)", landing.first_paint,
      internal.first_paint);
  row("SpeedIndex", landing.speed_index, internal.speed_index);
  row("above-the-fold (90% visual)", landing.atf90, internal.atf90);
  row("time-to-interactive", landing.tti, internal.tti);
  row("critical-path hops", landing.hops, internal.hops);
  std::cout << table;

  std::cout << "\nInternal pages trail on every QoE metric, and by *more* "
               "on TTI than on PLT\n(they are JS-heavier, §5.2) — studies "
               "optimizing QoE on landing pages only\nunderestimate how "
               "much work the neglected part of the web needs.\n";
  return 0;
}
