// Quickstart: build a small Hispar list and compare landing vs internal
// pages on a handful of headline metrics.
//
//   $ ./examples/quickstart [sites]
//
// Walks the full public API end to end: synthetic web -> top list ->
// search engine -> Hispar list -> measurement campaign -> analyses.
#include <cstdlib>
#include <iostream>

#include "core/analyses.h"
#include "core/hispar.h"
#include "core/measurement.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hispar;

  const std::size_t target_sites =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  // 1. The web we measure (a calibrated synthetic substrate).
  web::SyntheticWebConfig web_config;
  web_config.site_count = std::max<std::size_t>(300, target_sites * 3);
  web::SyntheticWeb web(web_config);

  // 2. Bootstrap list + search engine.
  toplist::TopListFactory toplists(web);
  search::SearchEngine engine(web);

  // 3. Build a Hispar list: 1 landing + up to 19 internal URLs per site.
  core::HisparBuilder builder(web, toplists, engine);
  core::HisparConfig config;
  config.name = "quickstart";
  config.target_sites = target_sites;
  config.urls_per_site = 20;
  const core::HisparList list = builder.build(config, /*week=*/0);
  const auto& stats = builder.last_build_stats();
  std::cout << "Built " << list.name << ": " << list.sets.size()
            << " sites, " << list.total_urls() << " URLs ("
            << stats.sites_dropped << " sites dropped, "
            << stats.queries_issued << " search queries, $"
            << util::TextTable::num(stats.spend_usd, 2) << ")\n\n";

  // 4. Fetch every page (landing x10, internal x1) and measure.
  core::CampaignConfig campaign_config;
  campaign_config.landing_loads = 5;  // quick demo; the paper uses 10
  core::MeasurementCampaign campaign(web, campaign_config);
  const auto sites = campaign.run(list);

  // 5. Landing-vs-internal headline numbers (paper Fig. 2).
  util::TextTable table({"Metric", "L > I (sites)", "geo-mean L/I",
                         "KS D", "p-value"});
  const auto row = [&](const char* name, const core::MetricFn& fn) {
    const auto comparison = core::compare_metric(sites, fn);
    const auto ks = core::ks_landing_vs_internal(sites, fn);
    table.add_row({name,
                   util::TextTable::pct(comparison.fraction_landing_greater()),
                   util::TextTable::num(comparison.geomean_ratio()),
                   util::TextTable::num(ks.statistic, 3),
                   util::TextTable::num(ks.p_value, 4)});
  };
  row("page size", core::metric::bytes);
  row("object count", core::metric::objects);
  row("PLT", core::metric::plt_ms);
  row("SpeedIndex", core::metric::speed_index_ms);
  row("unique domains", core::metric::unique_domains);
  row("handshakes", core::metric::handshakes);
  std::cout << table;

  std::cout << "\nInterpretation: landing pages are bigger and busier, yet "
               "load faster\n(CDN warmth + resource hints) — the paper's "
               "Jekyll-and-Hyde asymmetry.\n";
  return 0;
}
